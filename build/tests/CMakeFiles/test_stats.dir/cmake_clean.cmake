file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/stats/descriptive_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/descriptive_test.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/distributions_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/distributions_test.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/halton_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/halton_test.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/kfold_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/kfold_test.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/metrics_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/metrics_test.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/rng_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/rng_test.cpp.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
