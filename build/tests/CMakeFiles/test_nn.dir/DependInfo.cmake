
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/dataset_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/dataset_test.cpp.o.d"
  "/root/repo/tests/nn/extra_layers_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/extra_layers_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/extra_layers_test.cpp.o.d"
  "/root/repo/tests/nn/gradient_check_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/gradient_check_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/gradient_check_test.cpp.o.d"
  "/root/repo/tests/nn/idx_loader_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/idx_loader_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/idx_loader_test.cpp.o.d"
  "/root/repo/tests/nn/layers_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/layers_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/layers_test.cpp.o.d"
  "/root/repo/tests/nn/network_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/network_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/network_test.cpp.o.d"
  "/root/repo/tests/nn/tensor_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/tensor_test.cpp.o.d"
  "/root/repo/tests/nn/trainer_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/trainer_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/trainer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/hp_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/hp_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hp_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
