file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/dataset_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/dataset_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/extra_layers_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/extra_layers_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/gradient_check_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/gradient_check_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/idx_loader_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/idx_loader_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/layers_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/layers_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/network_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/network_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/tensor_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/tensor_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/trainer_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/trainer_test.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
