
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation.cpp" "bench-build/CMakeFiles/bench_ablation.dir/ablation.cpp.o" "gcc" "bench-build/CMakeFiles/bench_ablation.dir/ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/hp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/hp_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/hp_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hp_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
