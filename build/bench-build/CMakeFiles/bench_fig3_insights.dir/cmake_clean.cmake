file(REMOVE_RECURSE
  "../bench/bench_fig3_insights"
  "../bench/bench_fig3_insights.pdb"
  "CMakeFiles/bench_fig3_insights.dir/fig3_insights.cpp.o"
  "CMakeFiles/bench_fig3_insights.dir/fig3_insights.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_insights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
