# Empty compiler generated dependencies file for bench_tables2345.
# This may be replaced when dependencies are built.
