file(REMOVE_RECURSE
  "../bench/bench_tables2345"
  "../bench/bench_tables2345.pdb"
  "CMakeFiles/bench_tables2345.dir/tables2345.cpp.o"
  "CMakeFiles/bench_tables2345.dir/tables2345.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables2345.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
