file(REMOVE_RECURSE
  "../bench/bench_extensions"
  "../bench/bench_extensions.pdb"
  "CMakeFiles/bench_extensions.dir/extensions.cpp.o"
  "CMakeFiles/bench_extensions.dir/extensions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
