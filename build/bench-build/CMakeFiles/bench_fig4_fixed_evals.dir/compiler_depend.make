# Empty compiler generated dependencies file for bench_fig4_fixed_evals.
# This may be replaced when dependencies are built.
