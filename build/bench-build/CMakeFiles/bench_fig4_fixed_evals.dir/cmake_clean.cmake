file(REMOVE_RECURSE
  "../bench/bench_fig4_fixed_evals"
  "../bench/bench_fig4_fixed_evals.pdb"
  "CMakeFiles/bench_fig4_fixed_evals.dir/fig4_fixed_evals.cpp.o"
  "CMakeFiles/bench_fig4_fixed_evals.dir/fig4_fixed_evals.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_fixed_evals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
