file(REMOVE_RECURSE
  "../bench/bench_table1_models"
  "../bench/bench_table1_models.pdb"
  "CMakeFiles/bench_table1_models.dir/table1_models.cpp.o"
  "CMakeFiles/bench_table1_models.dir/table1_models.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
