file(REMOVE_RECURSE
  "../bench/bench_fig6_time_to_accuracy"
  "../bench/bench_fig6_time_to_accuracy.pdb"
  "CMakeFiles/bench_fig6_time_to_accuracy.dir/fig6_time_to_accuracy.cpp.o"
  "CMakeFiles/bench_fig6_time_to_accuracy.dir/fig6_time_to_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_time_to_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
