file(REMOVE_RECURSE
  "../bench/bench_fig1_design_space"
  "../bench/bench_fig1_design_space.pdb"
  "CMakeFiles/bench_fig1_design_space.dir/fig1_design_space.cpp.o"
  "CMakeFiles/bench_fig1_design_space.dir/fig1_design_space.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
