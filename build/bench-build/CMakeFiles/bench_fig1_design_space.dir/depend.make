# Empty dependencies file for bench_fig1_design_space.
# This may be replaced when dependencies are built.
