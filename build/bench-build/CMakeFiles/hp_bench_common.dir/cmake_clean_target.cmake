file(REMOVE_RECURSE
  "libhp_bench_common.a"
)
