file(REMOVE_RECURSE
  "CMakeFiles/hp_bench_common.dir/common/experiment.cpp.o"
  "CMakeFiles/hp_bench_common.dir/common/experiment.cpp.o.d"
  "CMakeFiles/hp_bench_common.dir/common/table.cpp.o"
  "CMakeFiles/hp_bench_common.dir/common/table.cpp.o.d"
  "libhp_bench_common.a"
  "libhp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
