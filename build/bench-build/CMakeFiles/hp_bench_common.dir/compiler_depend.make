# Empty compiler generated dependencies file for hp_bench_common.
# This may be replaced when dependencies are built.
