# Empty dependencies file for mnist_real_training_hpo.
# This may be replaced when dependencies are built.
