file(REMOVE_RECURSE
  "CMakeFiles/mnist_real_training_hpo.dir/mnist_real_training_hpo.cpp.o"
  "CMakeFiles/mnist_real_training_hpo.dir/mnist_real_training_hpo.cpp.o.d"
  "mnist_real_training_hpo"
  "mnist_real_training_hpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnist_real_training_hpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
