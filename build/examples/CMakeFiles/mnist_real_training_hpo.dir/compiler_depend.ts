# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mnist_real_training_hpo.
