# Empty dependencies file for cifar_power_constrained.
# This may be replaced when dependencies are built.
