file(REMOVE_RECURSE
  "CMakeFiles/cifar_power_constrained.dir/cifar_power_constrained.cpp.o"
  "CMakeFiles/cifar_power_constrained.dir/cifar_power_constrained.cpp.o.d"
  "cifar_power_constrained"
  "cifar_power_constrained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cifar_power_constrained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
