# Empty compiler generated dependencies file for cifar_power_constrained.
# This may be replaced when dependencies are built.
