file(REMOVE_RECURSE
  "CMakeFiles/energy_aware_selection.dir/energy_aware_selection.cpp.o"
  "CMakeFiles/energy_aware_selection.dir/energy_aware_selection.cpp.o.d"
  "energy_aware_selection"
  "energy_aware_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_aware_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
