# Empty compiler generated dependencies file for energy_aware_selection.
# This may be replaced when dependencies are built.
