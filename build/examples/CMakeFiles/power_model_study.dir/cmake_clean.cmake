file(REMOVE_RECURSE
  "CMakeFiles/power_model_study.dir/power_model_study.cpp.o"
  "CMakeFiles/power_model_study.dir/power_model_study.cpp.o.d"
  "power_model_study"
  "power_model_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_model_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
