# Empty dependencies file for power_model_study.
# This may be replaced when dependencies are built.
