file(REMOVE_RECURSE
  "libhp_gp.a"
)
