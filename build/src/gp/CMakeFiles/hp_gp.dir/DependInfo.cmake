
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gp/gaussian_process.cpp" "src/gp/CMakeFiles/hp_gp.dir/gaussian_process.cpp.o" "gcc" "src/gp/CMakeFiles/hp_gp.dir/gaussian_process.cpp.o.d"
  "/root/repo/src/gp/kernel.cpp" "src/gp/CMakeFiles/hp_gp.dir/kernel.cpp.o" "gcc" "src/gp/CMakeFiles/hp_gp.dir/kernel.cpp.o.d"
  "/root/repo/src/gp/kernel_fit.cpp" "src/gp/CMakeFiles/hp_gp.dir/kernel_fit.cpp.o" "gcc" "src/gp/CMakeFiles/hp_gp.dir/kernel_fit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/hp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
