# Empty dependencies file for hp_gp.
# This may be replaced when dependencies are built.
