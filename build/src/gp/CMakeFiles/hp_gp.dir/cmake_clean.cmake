file(REMOVE_RECURSE
  "CMakeFiles/hp_gp.dir/gaussian_process.cpp.o"
  "CMakeFiles/hp_gp.dir/gaussian_process.cpp.o.d"
  "CMakeFiles/hp_gp.dir/kernel.cpp.o"
  "CMakeFiles/hp_gp.dir/kernel.cpp.o.d"
  "CMakeFiles/hp_gp.dir/kernel_fit.cpp.o"
  "CMakeFiles/hp_gp.dir/kernel_fit.cpp.o.d"
  "libhp_gp.a"
  "libhp_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
