# CMake generated Testfile for 
# Source directory: /root/repo/src/gp
# Build directory: /root/repo/build/src/gp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
