file(REMOVE_RECURSE
  "CMakeFiles/hp_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/hp_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/hp_linalg.dir/least_squares.cpp.o"
  "CMakeFiles/hp_linalg.dir/least_squares.cpp.o.d"
  "CMakeFiles/hp_linalg.dir/matrix.cpp.o"
  "CMakeFiles/hp_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/hp_linalg.dir/qr.cpp.o"
  "CMakeFiles/hp_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/hp_linalg.dir/vector.cpp.o"
  "CMakeFiles/hp_linalg.dir/vector.cpp.o.d"
  "libhp_linalg.a"
  "libhp_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
