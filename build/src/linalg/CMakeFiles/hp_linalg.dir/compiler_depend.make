# Empty compiler generated dependencies file for hp_linalg.
# This may be replaced when dependencies are built.
