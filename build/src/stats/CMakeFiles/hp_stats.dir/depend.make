# Empty dependencies file for hp_stats.
# This may be replaced when dependencies are built.
