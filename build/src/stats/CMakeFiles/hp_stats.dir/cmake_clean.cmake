file(REMOVE_RECURSE
  "CMakeFiles/hp_stats.dir/descriptive.cpp.o"
  "CMakeFiles/hp_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/hp_stats.dir/distributions.cpp.o"
  "CMakeFiles/hp_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/hp_stats.dir/halton.cpp.o"
  "CMakeFiles/hp_stats.dir/halton.cpp.o.d"
  "CMakeFiles/hp_stats.dir/kfold.cpp.o"
  "CMakeFiles/hp_stats.dir/kfold.cpp.o.d"
  "CMakeFiles/hp_stats.dir/metrics.cpp.o"
  "CMakeFiles/hp_stats.dir/metrics.cpp.o.d"
  "CMakeFiles/hp_stats.dir/rng.cpp.o"
  "CMakeFiles/hp_stats.dir/rng.cpp.o.d"
  "libhp_stats.a"
  "libhp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
