file(REMOVE_RECURSE
  "libhp_stats.a"
)
