
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/hp_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/hp_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/stats/CMakeFiles/hp_stats.dir/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/hp_stats.dir/distributions.cpp.o.d"
  "/root/repo/src/stats/halton.cpp" "src/stats/CMakeFiles/hp_stats.dir/halton.cpp.o" "gcc" "src/stats/CMakeFiles/hp_stats.dir/halton.cpp.o.d"
  "/root/repo/src/stats/kfold.cpp" "src/stats/CMakeFiles/hp_stats.dir/kfold.cpp.o" "gcc" "src/stats/CMakeFiles/hp_stats.dir/kfold.cpp.o.d"
  "/root/repo/src/stats/metrics.cpp" "src/stats/CMakeFiles/hp_stats.dir/metrics.cpp.o" "gcc" "src/stats/CMakeFiles/hp_stats.dir/metrics.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/stats/CMakeFiles/hp_stats.dir/rng.cpp.o" "gcc" "src/stats/CMakeFiles/hp_stats.dir/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/hp_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
