file(REMOVE_RECURSE
  "libhp_testbed.a"
)
