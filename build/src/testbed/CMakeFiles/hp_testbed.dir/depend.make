# Empty dependencies file for hp_testbed.
# This may be replaced when dependencies are built.
