file(REMOVE_RECURSE
  "CMakeFiles/hp_testbed.dir/landscape.cpp.o"
  "CMakeFiles/hp_testbed.dir/landscape.cpp.o.d"
  "CMakeFiles/hp_testbed.dir/nn_objective.cpp.o"
  "CMakeFiles/hp_testbed.dir/nn_objective.cpp.o.d"
  "CMakeFiles/hp_testbed.dir/testbed_objective.cpp.o"
  "CMakeFiles/hp_testbed.dir/testbed_objective.cpp.o.d"
  "libhp_testbed.a"
  "libhp_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
