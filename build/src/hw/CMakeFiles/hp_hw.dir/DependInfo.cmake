
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cost_model.cpp" "src/hw/CMakeFiles/hp_hw.dir/cost_model.cpp.o" "gcc" "src/hw/CMakeFiles/hp_hw.dir/cost_model.cpp.o.d"
  "/root/repo/src/hw/device.cpp" "src/hw/CMakeFiles/hp_hw.dir/device.cpp.o" "gcc" "src/hw/CMakeFiles/hp_hw.dir/device.cpp.o.d"
  "/root/repo/src/hw/gpu_simulator.cpp" "src/hw/CMakeFiles/hp_hw.dir/gpu_simulator.cpp.o" "gcc" "src/hw/CMakeFiles/hp_hw.dir/gpu_simulator.cpp.o.d"
  "/root/repo/src/hw/nvml.cpp" "src/hw/CMakeFiles/hp_hw.dir/nvml.cpp.o" "gcc" "src/hw/CMakeFiles/hp_hw.dir/nvml.cpp.o.d"
  "/root/repo/src/hw/profiler.cpp" "src/hw/CMakeFiles/hp_hw.dir/profiler.cpp.o" "gcc" "src/hw/CMakeFiles/hp_hw.dir/profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/hp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hp_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
