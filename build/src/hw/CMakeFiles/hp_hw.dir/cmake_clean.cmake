file(REMOVE_RECURSE
  "CMakeFiles/hp_hw.dir/cost_model.cpp.o"
  "CMakeFiles/hp_hw.dir/cost_model.cpp.o.d"
  "CMakeFiles/hp_hw.dir/device.cpp.o"
  "CMakeFiles/hp_hw.dir/device.cpp.o.d"
  "CMakeFiles/hp_hw.dir/gpu_simulator.cpp.o"
  "CMakeFiles/hp_hw.dir/gpu_simulator.cpp.o.d"
  "CMakeFiles/hp_hw.dir/nvml.cpp.o"
  "CMakeFiles/hp_hw.dir/nvml.cpp.o.d"
  "CMakeFiles/hp_hw.dir/profiler.cpp.o"
  "CMakeFiles/hp_hw.dir/profiler.cpp.o.d"
  "libhp_hw.a"
  "libhp_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
