# Empty dependencies file for hp_hw.
# This may be replaced when dependencies are built.
