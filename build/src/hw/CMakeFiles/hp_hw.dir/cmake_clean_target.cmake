file(REMOVE_RECURSE
  "libhp_hw.a"
)
