
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/hp_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/hp_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dataset.cpp" "src/nn/CMakeFiles/hp_nn.dir/dataset.cpp.o" "gcc" "src/nn/CMakeFiles/hp_nn.dir/dataset.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/hp_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/hp_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/extra_layers.cpp" "src/nn/CMakeFiles/hp_nn.dir/extra_layers.cpp.o" "gcc" "src/nn/CMakeFiles/hp_nn.dir/extra_layers.cpp.o.d"
  "/root/repo/src/nn/idx_loader.cpp" "src/nn/CMakeFiles/hp_nn.dir/idx_loader.cpp.o" "gcc" "src/nn/CMakeFiles/hp_nn.dir/idx_loader.cpp.o.d"
  "/root/repo/src/nn/initializer.cpp" "src/nn/CMakeFiles/hp_nn.dir/initializer.cpp.o" "gcc" "src/nn/CMakeFiles/hp_nn.dir/initializer.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/hp_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/hp_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/hp_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/hp_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/nn/CMakeFiles/hp_nn.dir/pooling.cpp.o" "gcc" "src/nn/CMakeFiles/hp_nn.dir/pooling.cpp.o.d"
  "/root/repo/src/nn/sgd_trainer.cpp" "src/nn/CMakeFiles/hp_nn.dir/sgd_trainer.cpp.o" "gcc" "src/nn/CMakeFiles/hp_nn.dir/sgd_trainer.cpp.o.d"
  "/root/repo/src/nn/softmax.cpp" "src/nn/CMakeFiles/hp_nn.dir/softmax.cpp.o" "gcc" "src/nn/CMakeFiles/hp_nn.dir/softmax.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/hp_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/hp_nn.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/hp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hp_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
