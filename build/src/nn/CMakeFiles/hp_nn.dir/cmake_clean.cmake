file(REMOVE_RECURSE
  "CMakeFiles/hp_nn.dir/conv2d.cpp.o"
  "CMakeFiles/hp_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/hp_nn.dir/dataset.cpp.o"
  "CMakeFiles/hp_nn.dir/dataset.cpp.o.d"
  "CMakeFiles/hp_nn.dir/dense.cpp.o"
  "CMakeFiles/hp_nn.dir/dense.cpp.o.d"
  "CMakeFiles/hp_nn.dir/extra_layers.cpp.o"
  "CMakeFiles/hp_nn.dir/extra_layers.cpp.o.d"
  "CMakeFiles/hp_nn.dir/idx_loader.cpp.o"
  "CMakeFiles/hp_nn.dir/idx_loader.cpp.o.d"
  "CMakeFiles/hp_nn.dir/initializer.cpp.o"
  "CMakeFiles/hp_nn.dir/initializer.cpp.o.d"
  "CMakeFiles/hp_nn.dir/layers.cpp.o"
  "CMakeFiles/hp_nn.dir/layers.cpp.o.d"
  "CMakeFiles/hp_nn.dir/network.cpp.o"
  "CMakeFiles/hp_nn.dir/network.cpp.o.d"
  "CMakeFiles/hp_nn.dir/pooling.cpp.o"
  "CMakeFiles/hp_nn.dir/pooling.cpp.o.d"
  "CMakeFiles/hp_nn.dir/sgd_trainer.cpp.o"
  "CMakeFiles/hp_nn.dir/sgd_trainer.cpp.o.d"
  "CMakeFiles/hp_nn.dir/softmax.cpp.o"
  "CMakeFiles/hp_nn.dir/softmax.cpp.o.d"
  "CMakeFiles/hp_nn.dir/tensor.cpp.o"
  "CMakeFiles/hp_nn.dir/tensor.cpp.o.d"
  "libhp_nn.a"
  "libhp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
