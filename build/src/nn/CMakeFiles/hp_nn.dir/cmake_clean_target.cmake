file(REMOVE_RECURSE
  "libhp_nn.a"
)
