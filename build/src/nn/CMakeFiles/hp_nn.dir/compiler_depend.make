# Empty compiler generated dependencies file for hp_nn.
# This may be replaced when dependencies are built.
