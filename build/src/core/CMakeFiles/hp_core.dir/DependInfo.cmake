
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/acquisition.cpp" "src/core/CMakeFiles/hp_core.dir/acquisition.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/acquisition.cpp.o.d"
  "/root/repo/src/core/bayes_opt.cpp" "src/core/CMakeFiles/hp_core.dir/bayes_opt.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/bayes_opt.cpp.o.d"
  "/root/repo/src/core/candidate_pool.cpp" "src/core/CMakeFiles/hp_core.dir/candidate_pool.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/candidate_pool.cpp.o.d"
  "/root/repo/src/core/clock.cpp" "src/core/CMakeFiles/hp_core.dir/clock.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/clock.cpp.o.d"
  "/root/repo/src/core/early_termination.cpp" "src/core/CMakeFiles/hp_core.dir/early_termination.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/early_termination.cpp.o.d"
  "/root/repo/src/core/extra_acquisitions.cpp" "src/core/CMakeFiles/hp_core.dir/extra_acquisitions.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/extra_acquisitions.cpp.o.d"
  "/root/repo/src/core/framework.cpp" "src/core/CMakeFiles/hp_core.dir/framework.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/framework.cpp.o.d"
  "/root/repo/src/core/grid_search.cpp" "src/core/CMakeFiles/hp_core.dir/grid_search.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/grid_search.cpp.o.d"
  "/root/repo/src/core/hw_models.cpp" "src/core/CMakeFiles/hp_core.dir/hw_models.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/hw_models.cpp.o.d"
  "/root/repo/src/core/layerwise_models.cpp" "src/core/CMakeFiles/hp_core.dir/layerwise_models.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/layerwise_models.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/core/CMakeFiles/hp_core.dir/model_io.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/model_io.cpp.o.d"
  "/root/repo/src/core/objective.cpp" "src/core/CMakeFiles/hp_core.dir/objective.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/objective.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/hp_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/pareto.cpp" "src/core/CMakeFiles/hp_core.dir/pareto.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/pareto.cpp.o.d"
  "/root/repo/src/core/random_search.cpp" "src/core/CMakeFiles/hp_core.dir/random_search.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/random_search.cpp.o.d"
  "/root/repo/src/core/random_walk.cpp" "src/core/CMakeFiles/hp_core.dir/random_walk.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/random_walk.cpp.o.d"
  "/root/repo/src/core/run_trace.cpp" "src/core/CMakeFiles/hp_core.dir/run_trace.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/run_trace.cpp.o.d"
  "/root/repo/src/core/search_space.cpp" "src/core/CMakeFiles/hp_core.dir/search_space.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/search_space.cpp.o.d"
  "/root/repo/src/core/spaces.cpp" "src/core/CMakeFiles/hp_core.dir/spaces.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/spaces.cpp.o.d"
  "/root/repo/src/core/trace_io.cpp" "src/core/CMakeFiles/hp_core.dir/trace_io.cpp.o" "gcc" "src/core/CMakeFiles/hp_core.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gp/CMakeFiles/hp_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hp_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
