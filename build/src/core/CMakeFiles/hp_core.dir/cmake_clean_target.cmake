file(REMOVE_RECURSE
  "libhp_core.a"
)
