// Exception propagation from Objective::evaluate_detached through the
// thread pool under injected faults: the pool's deterministic
// lowest-index-exception rule must hold for real EvalFailures, and no
// record may be lost or duplicated when some indices throw.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/fault_injection.hpp"
#include "core/objective.hpp"
#include "core/resilience.hpp"
#include "parallel/thread_pool.hpp"

#include "../core/fake_objective.hpp"

namespace hp::parallel {
namespace {

using core::Configuration;
using core::EvalFailure;
using core::EvaluationRecord;
using core::FailureKind;
using core::FaultInjectingObjective;
using core::FaultSpec;
using core::testing::FakeObjective;
using core::testing::fake_space;

std::vector<Configuration> probe_configs(std::size_t n) {
  std::vector<Configuration> configs;
  configs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    configs.push_back(
        {0.001 * static_cast<double>(i), 1.0 - 0.0007 * static_cast<double>(i)});
  }
  return configs;
}

TEST(FaultPropagation, LowestIndexEvalFailureWinsAtAnyThreadCount) {
  FakeObjective inner(fake_space());
  FaultSpec spec;
  spec.failure_rate = 0.25;
  // Mixed kinds, so the surfaced exception identifies which index won.
  spec.transient_weight = 1.0;
  spec.persistent_weight = 1.0;
  spec.diverged_weight = 1.0;
  FaultInjectingObjective faulty(inner, spec);
  const std::vector<Configuration> configs = probe_configs(64);
  // Predict the schedule: the pool must surface the first scheduled fault.
  std::size_t first_faulty = configs.size();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (faulty.scheduled_fault(configs[i], 1)) {
      first_faulty = i;
      break;
    }
  }
  ASSERT_LT(first_faulty, configs.size()) << "probe set scheduled no faults";
  const FailureKind expected_kind =
      *faulty.scheduled_fault(configs[first_faulty], 1);

  for (std::size_t workers : {std::size_t{0}, std::size_t{2}, std::size_t{4}}) {
    ThreadPool pool(workers);
    std::atomic<std::size_t> executed{0};
    bool threw = false;
    try {
      (void)pool.parallel_map<EvaluationRecord>(
          configs.size(), [&](std::size_t i) {
            executed.fetch_add(1, std::memory_order_relaxed);
            return faulty.evaluate_detached(configs[i], nullptr);
          });
    } catch (const EvalFailure& e) {
      threw = true;
      EXPECT_EQ(e.kind(), expected_kind) << "workers=" << workers;
    }
    EXPECT_TRUE(threw) << "workers=" << workers;
    // Every index ran exactly once despite the failures.
    EXPECT_EQ(executed.load(), configs.size()) << "workers=" << workers;
  }
}

TEST(FaultPropagation, SurvivingRecordsAreIdenticalAcrossThreadCounts) {
  // Wrap each index in its own try: the map then completes, and the
  // resulting records must be the same set at every thread count — no
  // index lost, none duplicated, values bit-identical.
  FakeObjective inner(fake_space());
  FaultSpec spec;
  spec.failure_rate = 0.3;
  FaultInjectingObjective faulty(inner, spec);
  const std::vector<Configuration> configs = probe_configs(100);

  const auto run = [&](std::size_t workers) {
    ThreadPool pool(workers);
    return pool.parallel_map<EvaluationRecord>(
        configs.size(), [&](std::size_t i) {
          EvaluationRecord record;
          try {
            record = faulty.evaluate_detached(configs[i], nullptr);
          } catch (const EvalFailure& e) {
            record.config = configs[i];
            record.status = core::EvaluationStatus::Failed;
            record.failure_kind = e.kind();
            record.cost_s = e.cost_s();
          }
          record.index = i;
          return record;
        });
  };

  const std::vector<EvaluationRecord> serial = run(0);
  ASSERT_EQ(serial.size(), configs.size());
  std::set<std::size_t> indices;
  std::size_t failed = 0;
  for (const auto& record : serial) {
    indices.insert(record.index);
    if (record.status == core::EvaluationStatus::Failed) ++failed;
  }
  EXPECT_EQ(indices.size(), configs.size());  // exactly once each
  EXPECT_GT(failed, 10u);
  EXPECT_LT(failed, 60u);

  for (std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    const std::vector<EvaluationRecord> parallel_records = run(workers);
    ASSERT_EQ(parallel_records.size(), serial.size()) << "workers=" << workers;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel_records[i].index, serial[i].index);
      EXPECT_EQ(parallel_records[i].status, serial[i].status);
      EXPECT_EQ(parallel_records[i].test_error, serial[i].test_error);
      EXPECT_EQ(parallel_records[i].cost_s, serial[i].cost_s);
      EXPECT_EQ(parallel_records[i].failure_kind, serial[i].failure_kind);
    }
  }
}

TEST(FaultPropagation, NonEvalFailureExceptionsAlsoPropagate) {
  ThreadPool pool(3);
  EXPECT_THROW((void)pool.parallel_map<int>(16,
                                            [](std::size_t i) -> int {
                                              if (i == 5) {
                                                throw std::logic_error("bug");
                                              }
                                              return static_cast<int>(i);
                                            }),
               std::logic_error);
}

}  // namespace
}  // namespace hp::parallel
