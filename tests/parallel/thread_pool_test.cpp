#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hp::parallel {
namespace {

TEST(ThreadPoolTest, ZeroTasksReturnsImmediately) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(8);
  pool.parallel_for(8, [&](std::size_t i) { ids[i] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, EveryIndexExecutesExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(4);
  const std::vector<std::size_t> out = pool.parallel_map<std::size_t>(
      100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, LowestFailingIndexWins) {
  // Indices 3 and 7 both throw; the batch must surface index 3's exception
  // no matter which worker reaches it first, and still run every index.
  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(workers);
    std::atomic<int> executed{0};
    try {
      pool.parallel_for(10, [&](std::size_t i) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (i == 3) throw std::runtime_error("boom-3");
        if (i == 7) throw std::runtime_error("boom-7");
      });
      FAIL() << "expected parallel_for to rethrow (workers=" << workers << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom-3") << "workers=" << workers;
    }
    EXPECT_EQ(executed.load(), 10) << "workers=" << workers;
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPoolTest, SubmitRunsJobAndFutureCompletes) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  auto done = pool.submit([&] { ran = true; });
  done.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto done = pool.submit([] { throw std::logic_error("submit-boom"); });
  EXPECT_THROW(done.get(), std::logic_error);
}

TEST(ThreadPoolTest, SubmitFromInsideTask) {
  // A task may enqueue follow-up work (without blocking on it) — the queue
  // must accept jobs from worker threads.
  ThreadPool pool(2);
  std::atomic<bool> inner_ran{false};
  std::future<void> inner;
  auto outer = pool.submit([&] {
    inner = pool.submit([&] { inner_ran = true; });
  });
  outer.get();
  inner.get();
  EXPECT_TRUE(inner_ran.load());
}

TEST(ThreadPoolTest, StressManySmallBatches) {
  // Many short batches from the same pool: exercises the wakeup/drain path
  // that ThreadSanitizer cares about (see tests/README.md).
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(16, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 200L * (15 * 16 / 2));
}

}  // namespace
}  // namespace hp::parallel
