// The batched optimizer's core contract: a run is a pure function of
// (seed, batch_size) — the number of threads evaluating a round must not
// change a single bit of the trace. Verified trace-for-trace across all
// four methods on the full testbed stack, and at the unit level on the
// fake objective.

#include <gtest/gtest.h>

#include <memory>

#include "core/framework.hpp"
#include "core/random_search.hpp"
#include "obs/obs.hpp"
#include "testbed/testbed_objective.hpp"
#include "../core/fake_objective.hpp"

namespace hp::core {
namespace {

void expect_same_record(const EvaluationRecord& a, const EvaluationRecord& b,
                        std::size_t i, const std::string& label) {
  SCOPED_TRACE(label + " record " + std::to_string(i));
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.test_error, b.test_error);
  EXPECT_EQ(a.diverged, b.diverged);
  EXPECT_EQ(a.measured_power_w.has_value(), b.measured_power_w.has_value());
  if (a.measured_power_w && b.measured_power_w) {
    EXPECT_EQ(*a.measured_power_w, *b.measured_power_w);
  }
  EXPECT_EQ(a.measured_memory_mb.has_value(),
            b.measured_memory_mb.has_value());
  if (a.measured_memory_mb && b.measured_memory_mb) {
    EXPECT_EQ(*a.measured_memory_mb, *b.measured_memory_mb);
  }
  EXPECT_EQ(a.violates_constraints, b.violates_constraints);
  EXPECT_EQ(a.cost_s, b.cost_s);
  EXPECT_EQ(a.timestamp_s, b.timestamp_s);
  EXPECT_EQ(a.index, b.index);
}

void expect_same_result(const Optimizer::Result& a, const Optimizer::Result& b,
                        const std::string& label) {
  ASSERT_EQ(a.trace.size(), b.trace.size()) << label;
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    expect_same_record(a.trace.records()[i], b.trace.records()[i], i, label);
  }
  ASSERT_EQ(a.best.has_value(), b.best.has_value()) << label;
  if (a.best && b.best) {
    EXPECT_EQ(a.best->config, b.best->config) << label;
    EXPECT_EQ(a.best->test_error, b.best->test_error) << label;
  }
}

TEST(ParallelDeterminismTest, FakeObjectiveBatchedRunIsThreadCountInvariant) {
  const HyperParameterSpace space = testing::fake_space();
  ConstraintBudgets budgets;
  budgets.power_w = 60.0;

  auto run_with_threads = [&](std::size_t threads) {
    testing::FakeObjective objective(space);
    OptimizerOptions opt;
    opt.seed = 42;
    opt.max_function_evaluations = 24;
    opt.batch_size = 5;
    opt.num_threads = threads;
    opt.use_hardware_models = false;
    RandomSearchOptimizer optimizer(space, objective, budgets, nullptr, opt);
    return optimizer.run();
  };

  const auto one = run_with_threads(1);
  const auto eight = run_with_threads(8);
  EXPECT_EQ(one.trace.function_evaluations(), 24u);
  expect_same_result(one, eight, "fake");
}

TEST(ParallelDeterminismTest, SerialObjectiveFallbackIsThreadCountInvariant) {
  // With supports_concurrent_evaluation() off, evaluation happens in the
  // merge phase — threads still propose/filter in parallel, and the result
  // must stay identical.
  const HyperParameterSpace space = testing::fake_space();
  ConstraintBudgets budgets;

  auto run_with_threads = [&](std::size_t threads) {
    testing::FakeObjective objective(space);
    objective.set_supports_concurrent(false);
    OptimizerOptions opt;
    opt.seed = 9;
    opt.max_function_evaluations = 12;
    opt.batch_size = 4;
    opt.num_threads = threads;
    opt.use_hardware_models = false;
    RandomSearchOptimizer optimizer(space, objective, budgets, nullptr, opt);
    return optimizer.run();
  };

  expect_same_result(run_with_threads(1), run_with_threads(8), "serial");
}

class TestbedDeterminismTest : public ::testing::Test {
 protected:
  TestbedDeterminismTest() : problem_(mnist_problem()) {
    budgets_.power_w = 85.0;
    budgets_.memory_mb = 680.0;
  }

  /// One full framework run (fresh objective each time: the virtual clock
  /// and sensor streams start from scratch, like a real experiment).
  Optimizer::Result run(Method method, std::size_t threads) {
    testbed::TestbedObjective objective(
        problem_, testbed::mnist_landscape(), hw::gtx1070(),
        testbed::calibrated_options("mnist", hw::gtx1070()));
    HyperPowerFramework fw(problem_, objective, budgets_);
    hw::GpuSimulator sim(hw::gtx1070(), 33);
    hw::InferenceProfiler profiler(sim);
    (void)fw.train_hardware_models(profiler, 60, 21);

    FrameworkOptions opt;
    opt.method = method;
    opt.hyperpower_mode = true;
    opt.optimizer.seed = 7;
    opt.optimizer.max_function_evaluations = 6;
    opt.optimizer.max_samples = 400;
    opt.optimizer.batch_size = 4;
    opt.optimizer.num_threads = threads;
    // Small acquisition pool keeps the two BO methods fast; determinism
    // does not depend on pool size.
    opt.bo.pool.lattice_points = 120;
    opt.bo.pool.random_points = 60;
    return fw.optimize(opt).run;
  }

  BenchmarkProblem problem_;
  ConstraintBudgets budgets_;
};

TEST_F(TestbedDeterminismTest, AllFourMethodsAreThreadCountInvariant) {
  for (Method method : {Method::Rand, Method::RandWalk, Method::HwCwei,
                        Method::HwIeci}) {
    const auto one = run(method, 1);
    const auto eight = run(method, 8);
    expect_same_result(one, eight, to_string(method));
    EXPECT_GT(one.trace.size(), 0u) << to_string(method);
  }
}

namespace {

/// Discards everything; its presence alone arms every logger().enabled()
/// branch in the instrumented layers.
class NullSink final : public obs::LogSink {
 public:
  void write(const obs::LogEvent&) override {}
};

/// Scope guard: observability wide open on entry, silent defaults on exit.
class GlobalObsOn {
 public:
  GlobalObsOn() : sink_(std::make_shared<NullSink>()) {
    obs::logger().set_level(obs::LogLevel::kTrace);
    obs::logger().add_sink(sink_, obs::LogLevel::kTrace);
    obs::metrics().set_enabled(true);
  }
  ~GlobalObsOn() {
    obs::logger().clear_sinks();
    obs::metrics().set_enabled(false);
  }

 private:
  std::shared_ptr<obs::LogSink> sink_;
};

}  // namespace

TEST_F(TestbedDeterminismTest, ObservabilityIsPureReadSideForAllMethods) {
  // DESIGN.md §9: enabling trace-level logging plus metrics on an 8-thread
  // run must not change a bit versus the silent single-threaded run.
  for (Method method : {Method::Rand, Method::RandWalk, Method::HwCwei,
                        Method::HwIeci}) {
    const auto silent_one = run(method, 1);
    GlobalObsOn obs_on;
    const auto loud_eight = run(method, 8);
    expect_same_result(silent_one, loud_eight,
                       std::string("obs ") + to_string(method));
  }
}

}  // namespace
}  // namespace hp::core
