#include "core/resilience.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fake_objective.hpp"
#include "hw/sensor.hpp"

namespace hp::core {
namespace {

/// FakeObjective wrapper whose before_attempt hook can throw or sleep,
/// keyed by current_attempt() — the same channel the real fault-injection
/// decorator uses.
class FlakyObjective final : public Objective {
 public:
  explicit FlakyObjective(double cost_s = 10.0)
      : inner_(testing::fake_space(), cost_s) {}

  std::function<void(std::size_t attempt)> before_attempt;

  [[nodiscard]] EvaluationRecord evaluate(
      const Configuration& config,
      const EarlyTerminationRule* early_termination) override {
    if (before_attempt) before_attempt(current_attempt());
    return inner_.evaluate(config, early_termination);
  }
  [[nodiscard]] bool supports_concurrent_evaluation() const noexcept override {
    return concurrent_;
  }
  [[nodiscard]] EvaluationRecord evaluate_detached(
      const Configuration& config,
      const EarlyTerminationRule* early_termination) override {
    if (before_attempt) before_attempt(current_attempt());
    return inner_.evaluate_detached(config, early_termination);
  }
  [[nodiscard]] Clock& clock() override { return inner_.clock(); }

  void set_concurrent(bool on) {
    concurrent_ = on;
    inner_.set_supports_concurrent(on);
  }
  [[nodiscard]] VirtualClock& virtual_clock() noexcept {
    return inner_.virtual_clock();
  }
  [[nodiscard]] std::size_t evaluations() const noexcept {
    return inner_.evaluations();
  }

 private:
  testing::FakeObjective inner_;
  bool concurrent_ = true;
};

Configuration some_config() { return {0.4, 0.6}; }

RetryPolicy jitterless_policy() {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_initial_s = 30.0;
  policy.backoff_multiplier = 2.0;
  policy.backoff_jitter = 0.0;
  return policy;
}

TEST(RetryPolicy, BackoffIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.backoff_initial_s = 30.0;
  policy.backoff_multiplier = 2.0;
  policy.backoff_jitter = 0.1;
  stats::Rng a(42);
  stats::Rng b(42);
  for (std::size_t retry = 1; retry <= 4; ++retry) {
    const double base = 30.0 * std::pow(2.0, static_cast<double>(retry - 1));
    const double value = policy.backoff_s(retry, a);
    EXPECT_EQ(value, policy.backoff_s(retry, b));  // bit-identical
    EXPECT_GE(value, base * 0.9);
    EXPECT_LE(value, base * 1.1);
  }
}

TEST(RetryPolicy, BackoffValidatesParameters) {
  stats::Rng rng(1);
  RetryPolicy policy;
  EXPECT_THROW((void)policy.backoff_s(0, rng), std::invalid_argument);
  policy.backoff_multiplier = 0.0;
  EXPECT_THROW((void)policy.backoff_s(1, rng), std::invalid_argument);
  policy = RetryPolicy{};
  policy.backoff_jitter = 1.0;
  EXPECT_THROW((void)policy.backoff_s(1, rng), std::invalid_argument);
  policy = RetryPolicy{};
  policy.backoff_initial_s = -1.0;
  EXPECT_THROW((void)policy.backoff_s(1, rng), std::invalid_argument);
}

TEST(RetryPolicy, OnlyTransientAndTimeoutAreRetryable) {
  const RetryPolicy policy;
  EXPECT_TRUE(policy.retryable(FailureKind::Transient));
  EXPECT_TRUE(policy.retryable(FailureKind::Timeout));
  EXPECT_FALSE(policy.retryable(FailureKind::Persistent));
  EXPECT_FALSE(policy.retryable(FailureKind::Diverged));
}

TEST(ClassifyFailure, MapsExceptionTypesToKinds) {
  EXPECT_EQ(classify_failure(EvalFailure(FailureKind::Diverged, "x")),
            FailureKind::Diverged);
  EXPECT_EQ(classify_failure(EvalFailure(FailureKind::Timeout, "x")),
            FailureKind::Timeout);
  EXPECT_EQ(classify_failure(hw::SensorError("dark sensor")),
            FailureKind::Transient);
  EXPECT_EQ(classify_failure(std::runtime_error("model too large")),
            FailureKind::Persistent);
  EXPECT_EQ(classify_failure(std::invalid_argument("bad spec")),
            FailureKind::Persistent);
}

TEST(ResilientEvaluator, RetriesTransientFailuresUntilSuccess) {
  FlakyObjective objective;
  objective.before_attempt = [](std::size_t attempt) {
    if (attempt < 3) {
      throw EvalFailure(FailureKind::Transient, "injected", 5.0);
    }
  };
  ResilientEvaluator evaluator(objective, jitterless_policy(), /*seed=*/1);
  const ResilientOutcome outcome =
      evaluator.evaluate(some_config(), nullptr, 0, /*detached=*/false);
  EXPECT_FALSE(outcome.failed);
  EXPECT_EQ(outcome.retries, 2u);
  EXPECT_EQ(outcome.record.attempts, 3u);
  EXPECT_EQ(outcome.record.status, EvaluationStatus::Completed);
  // 2 failed attempts (5 s each) + backoffs 30 s and 60 s + success (10 s).
  EXPECT_DOUBLE_EQ(outcome.record.cost_s, 110.0);
  EXPECT_DOUBLE_EQ(objective.virtual_clock().now_s(), 110.0);
}

TEST(ResilientEvaluator, PersistentFailureIsNotRetried) {
  FlakyObjective objective;
  objective.before_attempt = [](std::size_t) {
    throw EvalFailure(FailureKind::Persistent, "broken spec", 5.0);
  };
  ResilientEvaluator evaluator(objective, jitterless_policy(), 1);
  const ResilientOutcome outcome =
      evaluator.evaluate(some_config(), nullptr, 0, false);
  EXPECT_TRUE(outcome.failed);
  EXPECT_EQ(outcome.retries, 0u);
  EXPECT_EQ(outcome.record.status, EvaluationStatus::Failed);
  EXPECT_EQ(outcome.record.attempts, 1u);
  ASSERT_TRUE(outcome.record.failure_kind.has_value());
  EXPECT_EQ(*outcome.record.failure_kind, FailureKind::Persistent);
  EXPECT_EQ(outcome.record.config, some_config());
  EXPECT_DOUBLE_EQ(outcome.record.test_error, 1.0);
  EXPECT_DOUBLE_EQ(outcome.record.cost_s, 5.0);
  EXPECT_DOUBLE_EQ(objective.virtual_clock().now_s(), 5.0);
}

TEST(ResilientEvaluator, ExhaustedAttemptsYieldFailedRecord) {
  FlakyObjective objective;
  objective.before_attempt = [](std::size_t) {
    throw EvalFailure(FailureKind::Transient, "always flaky", 5.0);
  };
  ResilientEvaluator evaluator(objective, jitterless_policy(), 1);
  const ResilientOutcome outcome =
      evaluator.evaluate(some_config(), nullptr, 0, false);
  EXPECT_TRUE(outcome.failed);
  EXPECT_EQ(outcome.record.attempts, 3u);
  ASSERT_TRUE(outcome.record.failure_kind.has_value());
  EXPECT_EQ(*outcome.record.failure_kind, FailureKind::Transient);
  // 3 failed attempts (5 s) + backoffs 30 s and 60 s.
  EXPECT_DOUBLE_EQ(outcome.record.cost_s, 105.0);
  EXPECT_DOUBLE_EQ(objective.virtual_clock().now_s(), 105.0);
}

TEST(ResilientEvaluator, UntypedExceptionsCostNothingExtra) {
  FlakyObjective objective;
  objective.before_attempt = [](std::size_t) {
    throw std::runtime_error("model does not fit");  // Persistent, cost 0
  };
  ResilientEvaluator evaluator(objective, jitterless_policy(), 1);
  const ResilientOutcome outcome =
      evaluator.evaluate(some_config(), nullptr, 0, false);
  EXPECT_TRUE(outcome.failed);
  EXPECT_DOUBLE_EQ(outcome.record.cost_s, 0.0);
  EXPECT_DOUBLE_EQ(objective.virtual_clock().now_s(), 0.0);
}

TEST(ResilientEvaluator, DetachedPathFoldsAllCostsWithoutTouchingClock) {
  FlakyObjective objective;
  objective.before_attempt = [](std::size_t attempt) {
    if (attempt == 1) throw EvalFailure(FailureKind::Transient, "flaky", 5.0);
  };
  ResilientEvaluator evaluator(objective, jitterless_policy(), 1);
  const ResilientOutcome outcome =
      evaluator.evaluate(some_config(), nullptr, 4, /*detached=*/true);
  EXPECT_FALSE(outcome.failed);
  EXPECT_EQ(outcome.record.attempts, 2u);
  // failed attempt (5 s) + first backoff (30 s) + success (10 s).
  EXPECT_DOUBLE_EQ(outcome.record.cost_s, 45.0);
  EXPECT_DOUBLE_EQ(objective.virtual_clock().now_s(), 0.0);
}

TEST(ResilientEvaluator, BackoffJitterIsAPureFunctionOfSeedAndSample) {
  RetryPolicy policy = jitterless_policy();
  policy.backoff_jitter = 0.3;
  const auto run_once = [&policy](std::size_t sample_index) {
    FlakyObjective objective;
    objective.before_attempt = [](std::size_t attempt) {
      if (attempt < 3) throw EvalFailure(FailureKind::Transient, "f", 5.0);
    };
    ResilientEvaluator evaluator(objective, policy, /*seed=*/77);
    return evaluator.evaluate(some_config(), nullptr, sample_index, true)
        .record.cost_s;
  };
  EXPECT_EQ(run_once(3), run_once(3));         // same sample → identical
  EXPECT_NE(run_once(3), run_once(4));         // per-sample streams differ
}

TEST(ResilientEvaluator, CurrentAttemptIsVisibleInsideAttemptsOnly) {
  EXPECT_EQ(current_attempt(), 0u);
  FlakyObjective objective;
  std::vector<std::size_t> seen;
  objective.before_attempt = [&seen](std::size_t attempt) {
    seen.push_back(attempt);
    if (attempt < 3) throw EvalFailure(FailureKind::Transient, "f");
  };
  ResilientEvaluator evaluator(objective, jitterless_policy(), 1);
  (void)evaluator.evaluate(some_config(), nullptr, 0, false);
  EXPECT_EQ(seen, (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(current_attempt(), 0u);
}

TEST(ResilientEvaluator, ZeroMaxAttemptsMeansOneAttempt) {
  FlakyObjective objective;
  objective.before_attempt = [](std::size_t) {
    throw EvalFailure(FailureKind::Transient, "f", 5.0);
  };
  RetryPolicy policy = jitterless_policy();
  policy.max_attempts = 0;
  ResilientEvaluator evaluator(objective, policy, 1);
  const ResilientOutcome outcome =
      evaluator.evaluate(some_config(), nullptr, 0, false);
  EXPECT_TRUE(outcome.failed);
  EXPECT_EQ(outcome.record.attempts, 1u);
}

TEST(ResilientEvaluator, RejectsNonPositiveTimeout) {
  FlakyObjective objective;
  RetryPolicy policy;
  policy.eval_timeout_s = 0.0;
  EXPECT_THROW(ResilientEvaluator(objective, policy, 1),
               std::invalid_argument);
}

TEST(ResilientEvaluator, DeadlineTimesOutHungAttemptAndRetries) {
  FlakyObjective objective;
  objective.before_attempt = [](std::size_t attempt) {
    if (attempt == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  };
  RetryPolicy policy = jitterless_policy();
  policy.backoff_initial_s = 1.0;
  policy.eval_timeout_s = 0.02;  // wall-clock seconds
  ResilientEvaluator evaluator(objective, policy, 1);
  const ResilientOutcome outcome =
      evaluator.evaluate(some_config(), nullptr, 0, /*detached=*/false);
  EXPECT_FALSE(outcome.failed);
  EXPECT_EQ(outcome.record.attempts, 2u);
  EXPECT_EQ(outcome.record.status, EvaluationStatus::Completed);
  // Timed-out attempt costs no virtual time; one backoff (1 s) + success.
  EXPECT_DOUBLE_EQ(outcome.record.cost_s, 11.0);
  EXPECT_DOUBLE_EQ(objective.virtual_clock().now_s(), 11.0);
}

TEST(ResilientEvaluator, ExhaustedTimeoutsYieldTimeoutFailedRecord) {
  FlakyObjective objective;
  objective.before_attempt = [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  };
  RetryPolicy policy = jitterless_policy();
  policy.max_attempts = 2;
  policy.backoff_initial_s = 1.0;
  policy.eval_timeout_s = 0.02;
  ResilientEvaluator evaluator(objective, policy, 1);
  const ResilientOutcome outcome =
      evaluator.evaluate(some_config(), nullptr, 0, false);
  EXPECT_TRUE(outcome.failed);
  ASSERT_TRUE(outcome.record.failure_kind.has_value());
  EXPECT_EQ(*outcome.record.failure_kind, FailureKind::Timeout);
  EXPECT_EQ(outcome.record.attempts, 2u);
}

TEST(ResilientEvaluator, DeadlineIgnoredForSerialObjectives) {
  // A serial objective cannot run on the watchdog thread (a timed-out
  // zombie would keep mutating the shared clock), so the deadline is
  // disabled with a warning and a slow attempt completes normally.
  FlakyObjective objective;
  objective.set_concurrent(false);
  objective.before_attempt = [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  };
  RetryPolicy policy = jitterless_policy();
  policy.eval_timeout_s = 0.005;
  ResilientEvaluator evaluator(objective, policy, 1);
  const ResilientOutcome outcome =
      evaluator.evaluate(some_config(), nullptr, 0, false);
  EXPECT_FALSE(outcome.failed);
  EXPECT_EQ(outcome.record.attempts, 1u);
}

TEST(DeadlineRunner, CompletesFastAttemptsAndRethrowsTheirExceptions) {
  DeadlineRunner runner;
  EvaluationRecord out;
  EXPECT_TRUE(runner.run(
      [] {
        EvaluationRecord r;
        r.test_error = 0.25;
        return r;
      },
      1.0, &out));
  EXPECT_DOUBLE_EQ(out.test_error, 0.25);
  EXPECT_THROW(
      (void)runner.run(
          []() -> EvaluationRecord { throw std::runtime_error("boom"); }, 1.0,
          &out),
      std::runtime_error);
  EXPECT_EQ(runner.zombie_count(), 0u);
}

TEST(DeadlineRunner, AbandonsTimedOutAttemptsAndReapsThemLater) {
  DeadlineRunner runner;
  EvaluationRecord out;
  EXPECT_FALSE(runner.run(
      [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return EvaluationRecord{};
      },
      0.005, &out));
  EXPECT_EQ(runner.zombie_count(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(runner.zombie_count(), 0u);
}

}  // namespace
}  // namespace hp::core
