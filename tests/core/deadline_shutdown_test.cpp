// Shutdown-safety tests for the deadline machinery: a timed-out attempt's
// thread keeps running after run() returns false, so destroying the
// DeadlineRunner (or the ResilientEvaluator that owns one) must join every
// abandoned thread *before* the state those threads capture goes out of
// scope. These tests ride test_resilience so CI's TSan phase checks them
// for access-after-free / data races, not just for the ordering asserted
// here.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/objective.hpp"
#include "core/resilience.hpp"

namespace hp::core {
namespace {

EvaluationRecord sleep_then_mark(std::atomic<int>& finished, int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  finished.fetch_add(1, std::memory_order_release);
  return EvaluationRecord{};
}

TEST(DeadlineRunnerShutdown, DestructionJoinsTheAbandonedAttempt) {
  // Declared before the runner, so it outlives the destructor the test is
  // about: if the dtor failed to join, the zombie would write to `finished`
  // after this frame died — which TSan/ASan would flag.
  std::atomic<int> finished{0};
  {
    DeadlineRunner runner;
    EvaluationRecord out;
    const bool done = runner.run(
        [&finished] { return sleep_then_mark(finished, 150); }, 0.01, &out);
    EXPECT_FALSE(done);
    EXPECT_EQ(runner.zombie_count(), 1u);
  }
  // The destructor has returned, so the zombie thread must have too.
  EXPECT_EQ(finished.load(std::memory_order_acquire), 1);
}

TEST(DeadlineRunnerShutdown, DestructionJoinsEveryZombieNotJustTheLast) {
  std::atomic<int> finished{0};
  {
    DeadlineRunner runner;
    for (int i = 0; i < 3; ++i) {
      EvaluationRecord out;
      EXPECT_FALSE(runner.run(
          [&finished] { return sleep_then_mark(finished, 100); }, 0.005,
          &out));
    }
    EXPECT_EQ(runner.zombie_count(), 3u);
  }
  EXPECT_EQ(finished.load(std::memory_order_acquire), 3);
}

TEST(DeadlineRunnerShutdown, FinishedAttemptsAreReapedNotLeaked) {
  DeadlineRunner runner;
  std::atomic<int> finished{0};
  EvaluationRecord out;
  EXPECT_FALSE(runner.run(
      [&finished] { return sleep_then_mark(finished, 50); }, 0.005, &out));
  while (finished.load(std::memory_order_acquire) < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // The attempt has returned; the bookkeeping pass reclaims its zombie
  // (its done flag is published moments after `finished`, so poll).
  EXPECT_TRUE(runner.run([] { return EvaluationRecord{}; }, 1.0, &out));
  for (int i = 0; i < 200 && runner.zombie_count() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(runner.zombie_count(), 0u);
}

/// Objective whose detached evaluation hangs (finitely) past any test
/// deadline, flipping a flag when the abandoned attempt finally returns.
class HangingObjective final : public Objective {
 public:
  explicit HangingObjective(std::atomic<int>& finished)
      : finished_(finished) {}

  [[nodiscard]] EvaluationRecord evaluate(
      const Configuration&, const EarlyTerminationRule*) override {
    return EvaluationRecord{};
  }
  [[nodiscard]] bool supports_concurrent_evaluation()
      const noexcept override {
    return true;
  }
  [[nodiscard]] EvaluationRecord evaluate_detached(
      const Configuration&, const EarlyTerminationRule*) override {
    return sleep_then_mark(finished_, 120);
  }
  [[nodiscard]] Clock& clock() override { return clock_; }

 private:
  std::atomic<int>& finished_;
  VirtualClock clock_;
};

TEST(DeadlineRunnerShutdown, EvaluatorTeardownAfterTimeoutIsSafe) {
  std::atomic<int> finished{0};
  {
    HangingObjective objective(finished);
    RetryPolicy policy;
    policy.max_attempts = 1;
    policy.eval_timeout_s = 0.01;
    ResilientEvaluator evaluator(objective, policy, /*run_seed=*/1);
    const ResilientOutcome outcome =
        evaluator.evaluate(Configuration{0.5, 0.5}, nullptr,
                           /*sample_index=*/0, /*detached=*/true);
    EXPECT_TRUE(outcome.failed);
    ASSERT_TRUE(outcome.record.failure_kind.has_value());
    EXPECT_EQ(*outcome.record.failure_kind, FailureKind::Timeout);
    // Evaluator (and the objective it references) are destroyed right here,
    // while the abandoned attempt is still sleeping.
  }
  EXPECT_EQ(finished.load(std::memory_order_acquire), 1);
}

}  // namespace
}  // namespace hp::core
