#include "core/candidate_pool.hpp"

#include <gtest/gtest.h>

namespace hp::core {
namespace {

HyperParameterSpace make_space() {
  return HyperParameterSpace({
      {"features", ParameterKind::Integer, 20, 80, true},
      {"lr", ParameterKind::LogContinuous, 0.001, 0.1, false},
  });
}

/// Deterministic acquisition peaked at a target unit point.
class PeakAcquisition final : public AcquisitionFunction {
 public:
  explicit PeakAcquisition(std::vector<double> target)
      : target_(std::move(target)) {}
  [[nodiscard]] double score(const std::vector<double>& unit_x,
                             const Configuration&,
                             const AcquisitionContext&) const override {
    double d2 = 0.0;
    for (std::size_t i = 0; i < unit_x.size(); ++i) {
      const double d = unit_x[i] - target_[i];
      d2 += d * d;
    }
    return 1.0 / (1e-3 + d2);
  }
  [[nodiscard]] std::string name() const override { return "peak"; }

 private:
  std::vector<double> target_;
};

/// Acquisition that scores everything zero.
class ZeroAcquisition final : public AcquisitionFunction {
 public:
  [[nodiscard]] double score(const std::vector<double>&, const Configuration&,
                             const AcquisitionContext&) const override {
    return 0.0;
  }
  [[nodiscard]] std::string name() const override { return "zero"; }
};

TEST(CandidatePool, RejectsEmptyPool) {
  const auto space = make_space();
  CandidatePoolOptions opt;
  opt.lattice_points = 0;
  opt.random_points = 0;
  EXPECT_THROW(CandidatePool(space, opt), std::invalid_argument);
}

TEST(CandidatePool, LatticeHasRequestedSizeAndDimension) {
  const auto space = make_space();
  CandidatePoolOptions opt;
  opt.lattice_points = 64;
  CandidatePool pool(space, opt);
  ASSERT_EQ(pool.lattice().size(), 64u);
  for (const auto& p : pool.lattice()) EXPECT_EQ(p.size(), 2u);
}

TEST(CandidatePool, FindsAcquisitionPeak) {
  const auto space = make_space();
  CandidatePoolOptions opt;
  opt.lattice_points = 400;
  opt.random_points = 200;
  CandidatePool pool(space, opt);
  AcquisitionContext ctx{space};
  PeakAcquisition peak({0.7, 0.3});
  stats::Rng rng(1);
  const auto best = pool.maximize(peak, ctx, rng);
  EXPECT_NEAR(best.unit[0], 0.7, 0.1);
  EXPECT_NEAR(best.unit[1], 0.3, 0.1);
  EXPECT_GT(best.score, 0.0);
  EXPECT_EQ(best.evaluated, 600u);
}

TEST(CandidatePool, MaximizerConfigMatchesUnit) {
  const auto space = make_space();
  CandidatePool pool(space);
  AcquisitionContext ctx{space};
  PeakAcquisition peak({0.5, 0.5});
  stats::Rng rng(2);
  const auto best = pool.maximize(peak, ctx, rng);
  // Config decodes from the unit point the maximizer reports.
  EXPECT_EQ(best.config, space.decode(best.unit));
}

TEST(CandidatePool, AllZeroScoresFallsBackToFeasibleCandidate) {
  const auto space = make_space();
  ConstraintBudgets budgets;
  budgets.power_w = 50.0;
  // P(z) = features: only feature counts <= 50 are feasible.
  HardwareConstraints hc(
      budgets, HardwareModel(ModelForm::Linear, linalg::Vector{1.0}, 0.0, 3.0),
      std::nullopt);
  AcquisitionContext ctx{space};
  ctx.constraints = &hc;
  CandidatePool pool(space);
  ZeroAcquisition zero;
  stats::Rng rng(3);
  const auto best = pool.maximize(zero, ctx, rng);
  ASSERT_FALSE(best.unit.empty());
  // The fallback maximizes feasibility probability -> a low feature count.
  EXPECT_LT(best.config[0], 55.0);
}

TEST(CandidatePool, AllZeroScoresWithoutConstraintsStillReturnsAPoint) {
  const auto space = make_space();
  AcquisitionContext ctx{space};
  CandidatePool pool(space);
  ZeroAcquisition zero;
  stats::Rng rng(4);
  const auto best = pool.maximize(zero, ctx, rng);
  EXPECT_EQ(best.unit.size(), 2u);
  EXPECT_NO_THROW(space.validate(best.config));
}

TEST(CandidatePool, BlockSizeDoesNotChangeTheMaximizer) {
  const auto space = make_space();
  PeakAcquisition peak({0.6, 0.4});
  AcquisitionContext ctx{space};
  CandidatePool reference(space);
  stats::Rng ref_rng(17);
  const auto want = reference.maximize(peak, ctx, ref_rng);
  for (std::size_t block : {std::size_t{1}, std::size_t{13}, std::size_t{999},
                            std::size_t{100000}}) {
    CandidatePoolOptions opt;
    opt.score_block_size = block;
    CandidatePool pool(space, opt);
    stats::Rng rng(17);
    const auto got = pool.maximize(peak, ctx, rng);
    EXPECT_EQ(got.unit, want.unit) << "block " << block;
    EXPECT_EQ(got.score, want.score) << "block " << block;
    EXPECT_EQ(got.evaluated, want.evaluated) << "block " << block;
  }
}

TEST(CandidatePool, RepeatedMaximizeReusesBuffersIndependently) {
  // Buffer reuse across rounds must not leak state: two rounds with
  // identically seeded RNGs return identical maximizers.
  const auto space = make_space();
  PeakAcquisition peak({0.2, 0.9});
  AcquisitionContext ctx{space};
  CandidatePool pool(space);
  stats::Rng rng_a(23);
  const auto first = pool.maximize(peak, ctx, rng_a);
  stats::Rng rng_b(23);
  const auto second = pool.maximize(peak, ctx, rng_b);
  EXPECT_EQ(first.unit, second.unit);
  EXPECT_EQ(first.score, second.score);
}

TEST(CandidatePool, RejectsZeroBlockSize) {
  const auto space = make_space();
  CandidatePoolOptions opt;
  opt.score_block_size = 0;
  EXPECT_THROW(CandidatePool(space, opt), std::invalid_argument);
}

TEST(CandidatePool, DeterministicLatticePerSeed) {
  const auto space = make_space();
  CandidatePoolOptions opt;
  opt.lattice_seed = 42;
  CandidatePool a(space, opt);
  CandidatePool b(space, opt);
  EXPECT_EQ(a.lattice(), b.lattice());
  opt.lattice_seed = 43;
  CandidatePool c(space, opt);
  EXPECT_NE(a.lattice(), c.lattice());
}

}  // namespace
}  // namespace hp::core
