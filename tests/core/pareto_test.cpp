#include "core/pareto.hpp"

#include <gtest/gtest.h>

namespace hp::core {
namespace {

EvaluationRecord completed(double error, double power,
                           std::optional<double> memory = std::nullopt,
                           bool diverged = false) {
  EvaluationRecord r;
  r.status = EvaluationStatus::Completed;
  r.test_error = error;
  r.measured_power_w = power;
  r.measured_memory_mb = memory;
  r.diverged = diverged;
  return r;
}

TEST(Pareto, DominanceRules) {
  ParetoObjectives obj;  // error + power
  ParetoPoint a{0.2, 80.0, 0.0, 0, {}};
  ParetoPoint b{0.3, 90.0, 0.0, 0, {}};
  ParetoPoint c{0.1, 95.0, 0.0, 0, {}};
  EXPECT_TRUE(dominates(a, b, obj));
  EXPECT_FALSE(dominates(b, a, obj));
  EXPECT_FALSE(dominates(a, c, obj));  // trade-off: neither dominates
  EXPECT_FALSE(dominates(c, a, obj));
  EXPECT_FALSE(dominates(a, a, obj));  // not strictly better
}

TEST(Pareto, MemoryObjectiveChangesDominance) {
  ParetoPoint a{0.2, 80.0, 900.0, 0, {}};
  ParetoPoint b{0.2, 80.0, 700.0, 0, {}};
  ParetoObjectives two;  // error + power only
  EXPECT_FALSE(dominates(b, a, two));  // equal in the enabled objectives
  ParetoObjectives three;
  three.memory = true;
  EXPECT_TRUE(dominates(b, a, three));
}

TEST(Pareto, FrontExtractsNonDominatedSortedByPower) {
  RunTrace trace;
  trace.add(completed(0.30, 70.0));
  trace.add(completed(0.25, 85.0));
  trace.add(completed(0.28, 90.0));  // dominated by the 0.25/85 point
  trace.add(completed(0.20, 100.0));
  trace.add(completed(0.35, 70.0));  // dominated (same power, worse error)
  const auto front = pareto_front(trace);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(front[0].power_w, 70.0);
  EXPECT_DOUBLE_EQ(front[0].test_error, 0.30);
  EXPECT_DOUBLE_EQ(front[1].power_w, 85.0);
  EXPECT_DOUBLE_EQ(front[2].power_w, 100.0);
  EXPECT_DOUBLE_EQ(front[2].test_error, 0.20);
}

TEST(Pareto, SkipsDivergedAndUnmeasured) {
  RunTrace trace;
  trace.add(completed(0.25, 85.0));
  trace.add(completed(0.9, 60.0, std::nullopt, /*diverged=*/true));
  EvaluationRecord filtered;
  filtered.status = EvaluationStatus::ModelFiltered;
  trace.add(filtered);
  EvaluationRecord no_power = completed(0.2, 0.0);
  no_power.measured_power_w.reset();
  trace.add(no_power);
  const auto front = pareto_front(trace);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_DOUBLE_EQ(front[0].test_error, 0.25);
}

TEST(Pareto, NoObjectivesThrows) {
  RunTrace trace;
  ParetoObjectives none;
  none.error = none.power = none.memory = false;
  EXPECT_THROW((void)pareto_front(trace, none), std::invalid_argument);
}

TEST(Pareto, DeduplicatesIdenticalObjectiveVectors) {
  RunTrace trace;
  trace.add(completed(0.25, 85.0));
  trace.add(completed(0.25, 85.0));
  EXPECT_EQ(pareto_front(trace).size(), 1u);
}

TEST(Pareto, Hypervolume2d) {
  // Two points (err 0.3 @ 70W, err 0.2 @ 90W) against reference (0.5, 100W):
  // rect1: (90-70)*(0.5-0.3) = 4; tail: (100-90)*(0.5-0.2) = 3.
  std::vector<ParetoPoint> front{
      {0.3, 70.0, 0.0, 0, {}},
      {0.2, 90.0, 0.0, 0, {}},
  };
  EXPECT_NEAR(pareto_hypervolume_2d(front, 0.5, 100.0), 7.0, 1e-12);
}

TEST(Pareto, HypervolumeEmptyFrontIsZero) {
  EXPECT_EQ(pareto_hypervolume_2d({}, 0.5, 100.0), 0.0);
}

TEST(Pareto, HypervolumeIgnoresPointsOutsideReference) {
  std::vector<ParetoPoint> front{
      {0.3, 120.0, 0.0, 0, {}},  // beyond the power reference
      {0.6, 70.0, 0.0, 0, {}},   // above the error reference
  };
  EXPECT_EQ(pareto_hypervolume_2d(front, 0.5, 100.0), 0.0);
}

TEST(Pareto, BetterFrontHasLargerHypervolume) {
  std::vector<ParetoPoint> weak{{0.4, 90.0, 0.0, 0, {}}};
  std::vector<ParetoPoint> strong{{0.25, 75.0, 0.0, 0, {}}};
  EXPECT_GT(pareto_hypervolume_2d(strong, 0.5, 100.0),
            pareto_hypervolume_2d(weak, 0.5, 100.0));
}

}  // namespace
}  // namespace hp::core
