#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/trace_io.hpp"

namespace hp::core {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

JournalHeader header() {
  JournalHeader h;
  h.method = "Rand";
  h.seed = 42;
  h.batch_size = 4;
  return h;
}

std::vector<EvaluationRecord> sample_records() {
  std::vector<EvaluationRecord> records;
  EvaluationRecord ok;
  ok.config = {0.1234567890123456, 0.9876543210987654};
  ok.status = EvaluationStatus::Completed;
  ok.test_error = 0.0625;
  ok.measured_power_w = 87.5;
  ok.measured_memory_mb = 512.25;
  ok.cost_s = 123.5;
  ok.timestamp_s = 123.5;
  ok.index = 0;
  records.push_back(ok);

  EvaluationRecord degraded;
  degraded.config = {1.0 / 3.0, 2.0 / 7.0};
  degraded.status = EvaluationStatus::Completed;
  degraded.test_error = 0.125;
  degraded.measured_power_w = 90.0;
  degraded.measured = false;  // came from the fallback model
  degraded.attempts = 2;
  degraded.cost_s = 150.0;
  degraded.timestamp_s = 273.5;
  degraded.index = 1;
  records.push_back(degraded);

  EvaluationRecord failed;
  failed.config = {0.5, 0.5};
  failed.status = EvaluationStatus::Failed;
  failed.test_error = 1.0;
  failed.violates_constraints = false;
  failed.cost_s = 105.0;
  failed.timestamp_s = 378.5;
  failed.index = 2;
  failed.attempts = 3;
  failed.failure_kind = FailureKind::Transient;
  records.push_back(failed);

  EvaluationRecord filtered;
  filtered.config = {0.75, 0.25};
  filtered.status = EvaluationStatus::ModelFiltered;
  filtered.violates_constraints = true;
  filtered.cost_s = 3.0;
  filtered.timestamp_s = 381.5;
  filtered.index = 3;
  records.push_back(filtered);
  return records;
}

void expect_record_eq(const EvaluationRecord& a, const EvaluationRecord& b) {
  EXPECT_EQ(a.config, b.config);  // bit-exact doubles
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.test_error, b.test_error);
  EXPECT_EQ(a.diverged, b.diverged);
  EXPECT_EQ(a.measured_power_w, b.measured_power_w);
  EXPECT_EQ(a.measured_memory_mb, b.measured_memory_mb);
  EXPECT_EQ(a.violates_constraints, b.violates_constraints);
  EXPECT_EQ(a.cost_s, b.cost_s);
  EXPECT_EQ(a.timestamp_s, b.timestamp_s);
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.measured, b.measured);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.failure_kind, b.failure_kind);
}

TEST(EvalJournal, RoundTripsRecordsBitExactly) {
  const std::string path = temp_path("journal_roundtrip.hpj");
  auto journal = EvalJournal::create(path, header());
  EXPECT_TRUE(journal.active());
  EXPECT_EQ(journal.path(), path);
  const std::vector<EvaluationRecord> records = sample_records();
  for (const auto& record : records) journal.append(record);

  const JournalLoadResult loaded = EvalJournal::load(path);
  EXPECT_EQ(loaded.header.method, "Rand");
  EXPECT_EQ(loaded.header.seed, 42u);
  EXPECT_EQ(loaded.header.batch_size, 4u);
  EXPECT_EQ(loaded.dropped_lines, 0u);
  ASSERT_EQ(loaded.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    SCOPED_TRACE(i);
    expect_record_eq(loaded.records[i], records[i]);
  }
  std::remove(path.c_str());
}

TEST(EvalJournal, InactiveJournalIgnoresAppend) {
  EvalJournal journal;
  EXPECT_FALSE(journal.active());
  journal.append(sample_records()[0]);  // must not crash or write anywhere
}

TEST(EvalJournal, DropsTornFinalLine) {
  const std::string path = temp_path("journal_torn.hpj");
  {
    auto journal = EvalJournal::create(path, header());
    for (const auto& record : sample_records()) journal.append(record);
  }
  {
    // Simulate dying mid-append: an unterminated, truncated record line.
    std::ofstream torn(path, std::ios::app | std::ios::binary);
    torn << "r,4,384.5,completed,0.1";
  }
  const JournalLoadResult loaded = EvalJournal::load(path);
  EXPECT_EQ(loaded.dropped_lines, 1u);
  EXPECT_EQ(loaded.records.size(), sample_records().size());
  std::remove(path.c_str());
}

TEST(EvalJournal, RecoversHeaderOnlyFileWithTornFirstRecord) {
  const std::string path = temp_path("journal_torn_first.hpj");
  {
    auto journal = EvalJournal::create(path, header());
    journal.append(sample_records()[0]);
  }
  // Truncate into the middle of the first (and only) record line.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  const std::size_t record_start = contents.find("\nr,") + 1;
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << contents.substr(0, record_start + 8);
  out.close();

  const JournalLoadResult loaded = EvalJournal::load(path);
  EXPECT_EQ(loaded.records.size(), 0u);
  EXPECT_EQ(loaded.dropped_lines, 1u);
  std::remove(path.c_str());
}

TEST(EvalJournal, ThrowsOnMidFileCorruption) {
  const std::string path = temp_path("journal_corrupt.hpj");
  {
    auto journal = EvalJournal::create(path, header());
    journal.append(sample_records()[0]);
  }
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  // A valid record line, re-appended after the corrupt one so the
  // corruption is mid-file — not a recoverable torn tail.
  const std::size_t record_start = contents.find("\nr,") + 1;
  const std::string valid_line = contents.substr(record_start);
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "r,not-a-record\n" << valid_line;
  }
  EXPECT_THROW((void)EvalJournal::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(EvalJournal, ThrowsOnMissingFileAndBadHeader) {
  EXPECT_THROW((void)EvalJournal::load(temp_path("no_such_journal.hpj")),
               std::runtime_error);
  const std::string path = temp_path("journal_badheader.hpj");
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << "not-a-journal,v9\n";
  }
  EXPECT_THROW((void)EvalJournal::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(EvalJournal, RewriteReproducesCreatePlusAppends) {
  const std::string incremental_path = temp_path("journal_incremental.hpj");
  const std::string rewritten_path = temp_path("journal_rewritten.hpj");
  const std::vector<EvaluationRecord> records = sample_records();
  {
    auto journal = EvalJournal::create(incremental_path, header());
    for (const auto& record : records) journal.append(record);
  }
  {
    auto journal = EvalJournal::rewrite(rewritten_path, header(), records);
    EXPECT_TRUE(journal.active());
  }
  std::ifstream a(incremental_path, std::ios::binary);
  std::ifstream b(rewritten_path, std::ios::binary);
  const std::string text_a((std::istreambuf_iterator<char>(a)),
                           std::istreambuf_iterator<char>());
  const std::string text_b((std::istreambuf_iterator<char>(b)),
                           std::istreambuf_iterator<char>());
  EXPECT_EQ(text_a, text_b);
  std::remove(incremental_path.c_str());
  std::remove(rewritten_path.c_str());
}

TEST(EvalJournal, WritesV3HeaderAndChecksummedRecordLines) {
  const std::string path = temp_path("journal_v3_format.hpj");
  {
    auto journal = EvalJournal::create(path, header());
    journal.append(sample_records()[0]);
  }
  std::ifstream in(path, std::ios::binary);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "hpjournal,v3,Rand,42,4");
  ASSERT_TRUE(std::getline(in, line));
  // Every v2+ record line ends in ",#<8-hex crc32 of the body>".
  ASSERT_GT(line.size(), 10u);
  EXPECT_EQ(line.substr(line.size() - 10, 2), ",#");
  for (std::size_t i = line.size() - 8; i < line.size(); ++i) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(line[i]))) << line;
  }
  std::remove(path.c_str());
}

TEST(EvalJournal, FinalizeWritesStudyStateEpilogueAndClosesJournal) {
  const std::string path = temp_path("journal_finalized.hpj");
  {
    auto journal = EvalJournal::create(path, header());
    journal.append(sample_records()[0]);
    journal.append(sample_records()[1]);
    journal.finalize("completed", 2);
    // finalize closes the journal: it goes inactive, appends are no-ops.
    EXPECT_FALSE(journal.active());
    journal.append(sample_records()[2]);
  }
  const JournalLoadResult loaded = EvalJournal::load(path);
  EXPECT_TRUE(loaded.complete());
  EXPECT_EQ(loaded.study_state, "completed");
  EXPECT_EQ(loaded.dropped_lines, 0u);
  ASSERT_EQ(loaded.records.size(), 2u);
  expect_record_eq(loaded.records[0], sample_records()[0]);
  expect_record_eq(loaded.records[1], sample_records()[1]);
  std::remove(path.c_str());
}

TEST(EvalJournal, UnfinalizedJournalLoadsAsIncomplete) {
  const std::string path = temp_path("journal_unfinalized.hpj");
  {
    auto journal = EvalJournal::create(path, header());
    journal.append(sample_records()[0]);
    // No finalize: the writer "crashed" — this is the resume case.
  }
  const JournalLoadResult loaded = EvalJournal::load(path);
  EXPECT_FALSE(loaded.complete());
  EXPECT_TRUE(loaded.study_state.empty());
  EXPECT_EQ(loaded.records.size(), 1u);
  std::remove(path.c_str());
}

TEST(EvalJournal, TornEpilogueDropsAsTailAndLoadsAsIncomplete) {
  const std::string path = temp_path("journal_torn_epilogue.hpj");
  {
    auto journal = EvalJournal::create(path, header());
    journal.append(sample_records()[0]);
    journal.finalize("completed", 1);
  }
  // Truncate into the middle of the epilogue line, as a crash during the
  // final write would: the journal must load as a normal unfinished run.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  const std::size_t epilogue_start = contents.find("\ns,") + 1;
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << contents.substr(0, epilogue_start + 5);
  out.close();

  const JournalLoadResult loaded = EvalJournal::load(path);
  EXPECT_FALSE(loaded.complete());
  EXPECT_EQ(loaded.dropped_lines, 1u);
  ASSERT_EQ(loaded.records.size(), 1u);
  expect_record_eq(loaded.records[0], sample_records()[0]);
  std::remove(path.c_str());
}

TEST(EvalJournal, ThrowsOnContentAfterStudyStateEpilogue) {
  const std::string path = temp_path("journal_after_epilogue.hpj");
  std::string record_line;
  {
    auto journal = EvalJournal::create(path, header());
    journal.append(sample_records()[0]);
  }
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    const std::size_t record_start = contents.find("\nr,") + 1;
    record_line = contents.substr(record_start);  // includes trailing \n
  }
  {
    auto journal = EvalJournal::rewrite(path, header(), {sample_records()[0]});
    journal.finalize("completed", 1);
  }
  {
    // A record appended after the epilogue is tampering, never a torn
    // tail: the writer closes the file right after finalizing.
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << record_line;
  }
  EXPECT_THROW((void)EvalJournal::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(EvalJournal, EpilogueRecordCountMismatchLoadsAsIncomplete) {
  const std::string path = temp_path("journal_epilogue_count.hpj");
  {
    auto journal = EvalJournal::create(path, header());
    journal.append(sample_records()[0]);
    journal.append(sample_records()[1]);
    journal.finalize("completed", 2);
  }
  // Delete the second record line wholesale. Every surviving line's
  // checksum is intact, so only the epilogue's record count can expose
  // the excision — and because the epilogue is the FINAL line, the
  // mismatch resolves conservatively: drop it as a torn tail and hand
  // resume an incomplete journal instead of trusting the "completed"
  // marker of a journal that lost records.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  const std::size_t second = contents.find("\nr,", contents.find("\nr,") + 1);
  const std::size_t epilogue = contents.find("\ns,");
  ASSERT_NE(second, std::string::npos);
  ASSERT_NE(epilogue, std::string::npos);
  contents.erase(second, epilogue - second);
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << contents;
  }
  const JournalLoadResult loaded = EvalJournal::load(path);
  EXPECT_FALSE(loaded.complete());
  EXPECT_EQ(loaded.dropped_lines, 1u);
  ASSERT_EQ(loaded.records.size(), 1u);
  std::remove(path.c_str());
}

TEST(EvalJournal, LoadsLegacyV1JournalsWithoutChecksums) {
  const std::string path = temp_path("journal_v1_legacy.hpj");
  const std::vector<EvaluationRecord> records = sample_records();
  {
    // A journal written by the pre-checksum format: plain record lines.
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << "hpjournal,v1,Rand,42,4\n";
    for (const auto& record : records) {
      out << format_record_line(record) << "\n";
    }
  }
  const JournalLoadResult loaded = EvalJournal::load(path);
  EXPECT_EQ(loaded.header.method, "Rand");
  EXPECT_EQ(loaded.header.seed, 42u);
  EXPECT_EQ(loaded.dropped_lines, 0u);
  ASSERT_EQ(loaded.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    SCOPED_TRACE(i);
    expect_record_eq(loaded.records[i], records[i]);
  }
  std::remove(path.c_str());
}

TEST(EvalJournal, LoadsLegacyV2JournalsWithoutEpilogue) {
  const std::string path = temp_path("journal_v2_legacy.hpj");
  const std::vector<EvaluationRecord> records = sample_records();
  {
    auto journal = EvalJournal::create(path, header());
    for (const auto& record : records) journal.append(record);
  }
  // Record lines are identical between v2 and v3; only the header version
  // and the (absent) epilogue differ. Rewriting the header makes this an
  // exact pre-epilogue journal.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  const std::size_t version = contents.find(",v3,");
  ASSERT_NE(version, std::string::npos);
  contents.replace(version, 4, ",v2,");
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << contents;
  }
  const JournalLoadResult loaded = EvalJournal::load(path);
  EXPECT_FALSE(loaded.complete());
  EXPECT_EQ(loaded.dropped_lines, 0u);
  ASSERT_EQ(loaded.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    SCOPED_TRACE(i);
    expect_record_eq(loaded.records[i], records[i]);
  }
  std::remove(path.c_str());
}

// Reads the journal file, applies one text substitution, writes it back —
// the "disk flipped a digit" / "merge tore a write" simulator.
void tamper(const std::string& path, const std::string& from,
            const std::string& to) {
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  const std::size_t pos = contents.find(from);
  ASSERT_NE(pos, std::string::npos);
  contents.replace(pos, from.size(), to);
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << contents;
}

TEST(EvalJournal, RejectsMidFileChecksumMismatchEvenWhenParseable) {
  const std::string path = temp_path("journal_v2_midflip.hpj");
  {
    auto journal = EvalJournal::create(path, header());
    journal.append(sample_records()[0]);
    journal.append(sample_records()[1]);
  }
  // Flip one digit of the FIRST record's test error. The line still parses
  // as a valid record — only the checksum knows it is not what was written.
  tamper(path, "0.0625", "0.0635");
  EXPECT_THROW((void)EvalJournal::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(EvalJournal, DropsChecksumMismatchOnFinalLineAsTornTail) {
  const std::string path = temp_path("journal_v2_tailflip.hpj");
  {
    auto journal = EvalJournal::create(path, header());
    journal.append(sample_records()[0]);
    journal.append(sample_records()[1]);
  }
  // Same flip on the LAST line: recoverable torn tail, prefix survives.
  tamper(path, "0.125", "0.135");
  const JournalLoadResult loaded = EvalJournal::load(path);
  EXPECT_EQ(loaded.dropped_lines, 1u);
  ASSERT_EQ(loaded.records.size(), 1u);
  expect_record_eq(loaded.records[0], sample_records()[0]);
  std::remove(path.c_str());
}

TEST(EvalJournal, RewriteJournalStaysAppendable) {
  const std::string path = temp_path("journal_rewrite_append.hpj");
  const std::vector<EvaluationRecord> records = sample_records();
  {
    auto journal = EvalJournal::rewrite(
        path, header(), {records.begin(), records.begin() + 2});
    for (std::size_t i = 2; i < records.size(); ++i) {
      journal.append(records[i]);
    }
  }
  const JournalLoadResult loaded = EvalJournal::load(path);
  ASSERT_EQ(loaded.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    SCOPED_TRACE(i);
    expect_record_eq(loaded.records[i], records[i]);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hp::core
