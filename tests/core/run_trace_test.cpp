#include "core/run_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hp::core {
namespace {

EvaluationRecord record(EvaluationStatus status, double error, double ts,
                        bool violates = false, bool diverged = false) {
  EvaluationRecord r;
  r.status = status;
  r.test_error = error;
  r.timestamp_s = ts;
  r.violates_constraints = violates;
  r.diverged = diverged;
  return r;
}

RunTrace sample_trace() {
  RunTrace t;
  t.add(record(EvaluationStatus::Completed, 0.30, 100.0));
  t.add(record(EvaluationStatus::ModelFiltered, 1.0, 103.0, true));
  t.add(record(EvaluationStatus::Completed, 0.25, 200.0, true));  // violating
  t.add(record(EvaluationStatus::EarlyTerminated, 0.9, 230.0, false, true));
  t.add(record(EvaluationStatus::Completed, 0.20, 340.0));
  t.add(record(EvaluationStatus::InfeasibleArchitecture, 1.0, 345.0));
  t.add(record(EvaluationStatus::Completed, 0.22, 460.0));
  return t;
}

TEST(RunTrace, Counters) {
  const RunTrace t = sample_trace();
  EXPECT_EQ(t.size(), 7u);
  EXPECT_EQ(t.function_evaluations(), 5u);  // completed + early-terminated
  EXPECT_EQ(t.completed_count(), 4u);
  EXPECT_EQ(t.model_filtered_count(), 1u);
  EXPECT_EQ(t.early_terminated_count(), 1u);
  EXPECT_EQ(t.measured_violation_count(), 1u);  // only the trained violator
}

TEST(RunTrace, BestIgnoresViolatingAndNonCompleted) {
  const RunTrace t = sample_trace();
  const auto best = t.best();
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->test_error, 0.20);
}

TEST(RunTrace, BestEmptyWhenNothingFeasible) {
  RunTrace t;
  t.add(record(EvaluationStatus::Completed, 0.2, 10.0, /*violates=*/true));
  t.add(record(EvaluationStatus::ModelFiltered, 1.0, 12.0, true));
  EXPECT_FALSE(t.best().has_value());
}

TEST(RunTrace, BestErrorUpToIndex) {
  const RunTrace t = sample_trace();
  EXPECT_DOUBLE_EQ(t.best_error_up_to(0), 0.30);
  EXPECT_DOUBLE_EQ(t.best_error_up_to(3), 0.30);  // violator doesn't count
  EXPECT_DOUBLE_EQ(t.best_error_up_to(4), 0.20);
  EXPECT_DOUBLE_EQ(t.best_error_up_to(100), 0.20);
}

TEST(RunTrace, BestErrorSeriesPerFunctionEvaluation) {
  const RunTrace t = sample_trace();
  const auto series = t.best_error_per_function_evaluation();
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series[0], 0.30);
  EXPECT_DOUBLE_EQ(series[1], 0.30);
  EXPECT_DOUBLE_EQ(series[2], 0.30);
  EXPECT_DOUBLE_EQ(series[3], 0.20);
  EXPECT_DOUBLE_EQ(series[4], 0.20);
}

TEST(RunTrace, ViolationSeriesCumulative) {
  const RunTrace t = sample_trace();
  const auto series = t.violations_per_function_evaluation();
  ASSERT_EQ(series.size(), 5u);
  EXPECT_EQ(series[0], 0u);
  EXPECT_EQ(series[1], 1u);
  EXPECT_EQ(series[4], 1u);
}

TEST(RunTrace, TimeToSampleCount) {
  const RunTrace t = sample_trace();
  EXPECT_FALSE(t.time_to_sample_count(0).has_value());
  EXPECT_DOUBLE_EQ(*t.time_to_sample_count(1), 100.0);
  EXPECT_DOUBLE_EQ(*t.time_to_sample_count(7), 460.0);
  EXPECT_FALSE(t.time_to_sample_count(8).has_value());
}

TEST(RunTrace, TimeToError) {
  const RunTrace t = sample_trace();
  EXPECT_DOUBLE_EQ(*t.time_to_error(0.30), 100.0);
  EXPECT_DOUBLE_EQ(*t.time_to_error(0.21), 340.0);
  EXPECT_FALSE(t.time_to_error(0.1).has_value());
}

TEST(RunTrace, TotalTime) {
  EXPECT_DOUBLE_EQ(sample_trace().total_time_s(), 460.0);
  EXPECT_DOUBLE_EQ(RunTrace{}.total_time_s(), 0.0);
}

TEST(RunTrace, CsvHasHeaderAndOneRowPerRecord) {
  const RunTrace t = sample_trace();
  std::ostringstream os;
  t.write_csv(os);
  const std::string csv = os.str();
  std::size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 8u);  // header + 7 records
  EXPECT_NE(csv.find("model_filtered"), std::string::npos);
  EXPECT_NE(csv.find("early_terminated"), std::string::npos);
}

TEST(RunTrace, EmptyTraceDerivedSeries) {
  const RunTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.function_evaluations(), 0u);
  EXPECT_EQ(t.measured_violation_count(), 0u);
  EXPECT_FALSE(t.best().has_value());
  EXPECT_DOUBLE_EQ(t.best_error_up_to(0), 1.0);
  EXPECT_TRUE(t.best_error_per_function_evaluation().empty());
  EXPECT_TRUE(t.violations_per_function_evaluation().empty());
  EXPECT_FALSE(t.time_to_sample_count(1).has_value());
  EXPECT_FALSE(t.time_to_error(1.0).has_value());
  std::ostringstream os;
  t.write_csv(os);
  std::size_t lines = 0;
  for (char c : os.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 1u);  // header only
}

TEST(RunTrace, AllSamplesFilteredTrace) {
  // A HyperPower run where the models reject everything: samples exist but
  // no function evaluation ever happens, so the per-evaluation series stay
  // empty while the per-sample queries still work.
  RunTrace t;
  for (int i = 0; i < 3; ++i) {
    t.add(record(EvaluationStatus::ModelFiltered, 1.0, 10.0 * (i + 1), true));
  }
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.function_evaluations(), 0u);
  EXPECT_EQ(t.model_filtered_count(), 3u);
  EXPECT_EQ(t.measured_violation_count(), 0u);  // violating by prediction only
  EXPECT_FALSE(t.best().has_value());
  EXPECT_TRUE(t.best_error_per_function_evaluation().empty());
  EXPECT_TRUE(t.violations_per_function_evaluation().empty());
  EXPECT_DOUBLE_EQ(*t.time_to_sample_count(3), 30.0);
  EXPECT_FALSE(t.time_to_error(1.0).has_value());
  EXPECT_DOUBLE_EQ(t.total_time_s(), 30.0);
}

TEST(RunTrace, SingleEarlyTerminatedRecord) {
  RunTrace t;
  t.add(record(EvaluationStatus::EarlyTerminated, 0.9, 42.0, false, true));
  EXPECT_EQ(t.function_evaluations(), 1u);  // it did invoke the objective
  EXPECT_EQ(t.completed_count(), 0u);
  EXPECT_EQ(t.early_terminated_count(), 1u);
  EXPECT_FALSE(t.best().has_value());  // but never counts for best
  const auto series = t.best_error_per_function_evaluation();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0], 1.0);  // nothing feasible yet
  EXPECT_DOUBLE_EQ(*t.time_to_sample_count(1), 42.0);
  EXPECT_FALSE(t.time_to_error(0.9).has_value());
}

TEST(EvaluationStatus, ToStringCoversAll) {
  EXPECT_EQ(to_string(EvaluationStatus::Completed), "completed");
  EXPECT_EQ(to_string(EvaluationStatus::EarlyTerminated), "early_terminated");
  EXPECT_EQ(to_string(EvaluationStatus::ModelFiltered), "model_filtered");
  EXPECT_EQ(to_string(EvaluationStatus::InfeasibleArchitecture),
            "infeasible_architecture");
}

TEST(EvaluationRecord, CountsForBestRules) {
  EXPECT_TRUE(record(EvaluationStatus::Completed, 0.1, 0).counts_for_best());
  EXPECT_FALSE(
      record(EvaluationStatus::Completed, 0.1, 0, true).counts_for_best());
  EXPECT_FALSE(record(EvaluationStatus::Completed, 0.9, 0, false, true)
                   .counts_for_best());
  EXPECT_FALSE(
      record(EvaluationStatus::EarlyTerminated, 0.9, 0).counts_for_best());
  EXPECT_FALSE(
      record(EvaluationStatus::ModelFiltered, 1.0, 0).counts_for_best());
}

}  // namespace
}  // namespace hp::core
