#include "core/search_space.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hp::core {
namespace {

HyperParameterSpace make_space() {
  return HyperParameterSpace({
      {"features", ParameterKind::Integer, 20, 80, true},
      {"kernel", ParameterKind::Integer, 2, 5, true},
      {"lr", ParameterKind::LogContinuous, 0.001, 0.1, false},
      {"momentum", ParameterKind::Continuous, 0.8, 0.95, false},
  });
}

TEST(ParameterDef, Validation) {
  ParameterDef p{"x", ParameterKind::Continuous, 1.0, 0.0, false};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {"", ParameterKind::Continuous, 0.0, 1.0, false};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {"x", ParameterKind::LogContinuous, 0.0, 1.0, false};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {"x", ParameterKind::Integer, 1.5, 3.0, false};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(HyperParameterSpace, EmptyThrows) {
  EXPECT_THROW(HyperParameterSpace({}), std::invalid_argument);
}

TEST(HyperParameterSpace, DimensionAndStructuralCount) {
  const auto space = make_space();
  EXPECT_EQ(space.dimension(), 4u);
  EXPECT_EQ(space.structural_dimension(), 2u);
}

TEST(HyperParameterSpace, IndexOf) {
  const auto space = make_space();
  EXPECT_EQ(space.index_of("lr"), 2u);
  EXPECT_FALSE(space.index_of("nope").has_value());
}

TEST(HyperParameterSpace, StructuralVectorPicksFlaggedParams) {
  const auto space = make_space();
  const Configuration config{40.0, 3.0, 0.01, 0.9};
  const auto z = space.structural_vector(config);
  ASSERT_EQ(z.size(), 2u);
  EXPECT_EQ(z[0], 40.0);
  EXPECT_EQ(z[1], 3.0);
}

TEST(HyperParameterSpace, DecodeRespectsKinds) {
  const auto space = make_space();
  const Configuration lo = space.decode({0.0, 0.0, 0.0, 0.0});
  EXPECT_EQ(lo[0], 20.0);
  EXPECT_EQ(lo[1], 2.0);
  EXPECT_NEAR(lo[2], 0.001, 1e-12);
  EXPECT_NEAR(lo[3], 0.8, 1e-12);
  const Configuration hi = space.decode({1.0, 1.0, 1.0, 1.0});
  EXPECT_EQ(hi[0], 80.0);
  EXPECT_EQ(hi[1], 5.0);
  EXPECT_NEAR(hi[2], 0.1, 1e-12);
  EXPECT_NEAR(hi[3], 0.95, 1e-12);
}

TEST(HyperParameterSpace, DecodeLogScaleMidpointIsGeometricMean) {
  const auto space = make_space();
  const Configuration mid = space.decode({0.5, 0.5, 0.5, 0.5});
  EXPECT_NEAR(mid[2], std::sqrt(0.001 * 0.1), 1e-9);
}

TEST(HyperParameterSpace, DecodeClampsOutOfRangeUnits) {
  const auto space = make_space();
  const Configuration c = space.decode({-0.5, 2.0, 1.5, -1.0});
  EXPECT_EQ(c[0], 20.0);
  EXPECT_EQ(c[1], 5.0);
  EXPECT_NEAR(c[2], 0.1, 1e-12);
  EXPECT_NEAR(c[3], 0.8, 1e-12);
}

TEST(HyperParameterSpace, DecodeWrongSizeThrows) {
  const auto space = make_space();
  EXPECT_THROW((void)space.decode({0.5}), std::invalid_argument);
}

TEST(HyperParameterSpace, EncodeDecodeRoundTripContinuous) {
  const auto space = make_space();
  const Configuration config{40.0, 3.0, 0.02, 0.85};
  const Configuration round = space.decode(space.encode(config));
  EXPECT_EQ(round[0], 40.0);
  EXPECT_EQ(round[1], 3.0);
  EXPECT_NEAR(round[2], 0.02, 1e-9);
  EXPECT_NEAR(round[3], 0.85, 1e-9);
}

class IntegerRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(IntegerRoundTrip, EveryIntegerValueRoundTrips) {
  const auto space = make_space();
  const double v = GetParam();
  Configuration config{v, 3.0, 0.01, 0.9};
  const Configuration round = space.decode(space.encode(config));
  EXPECT_EQ(round[0], v);
}

INSTANTIATE_TEST_SUITE_P(AllFeatures, IntegerRoundTrip,
                         ::testing::Range(20, 81, 5));

TEST(HyperParameterSpace, SampleStaysInRangeAndIntegral) {
  const auto space = make_space();
  stats::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const Configuration c = space.sample(rng);
    EXPECT_NO_THROW(space.validate(c));
    EXPECT_EQ(std::floor(c[0]), c[0]);
    EXPECT_EQ(std::floor(c[1]), c[1]);
  }
}

TEST(HyperParameterSpace, SampleCoversIntegerExtremes) {
  const auto space = make_space();
  stats::Rng rng(4);
  bool saw20 = false, saw80 = false;
  for (int i = 0; i < 2000; ++i) {
    const Configuration c = space.sample(rng);
    if (c[0] == 20.0) saw20 = true;
    if (c[0] == 80.0) saw80 = true;
  }
  EXPECT_TRUE(saw20);
  EXPECT_TRUE(saw80);
}

TEST(HyperParameterSpace, NeighborStaysInBox) {
  const auto space = make_space();
  stats::Rng rng(5);
  const Configuration center{20.0, 2.0, 0.001, 0.8};  // at the corner
  for (int i = 0; i < 200; ++i) {
    const Configuration n = space.neighbor(center, 0.3, rng);
    EXPECT_NO_THROW(space.validate(n));
  }
}

TEST(HyperParameterSpace, NeighborSmallSigmaStaysClose) {
  const auto space = make_space();
  stats::Rng rng(6);
  const Configuration center{50.0, 3.0, 0.01, 0.875};
  for (int i = 0; i < 100; ++i) {
    const Configuration n = space.neighbor(center, 0.01, rng);
    EXPECT_NEAR(n[0], 50.0, 5.0);
    EXPECT_NEAR(n[3], 0.875, 0.02);
  }
}

TEST(HyperParameterSpace, NeighborInvalidSigmaThrows) {
  const auto space = make_space();
  stats::Rng rng(7);
  EXPECT_THROW((void)space.neighbor({50.0, 3.0, 0.01, 0.875}, 0.0, rng),
               std::invalid_argument);
}

TEST(HyperParameterSpace, ValidateRejectsOutOfRangeAndNonIntegral) {
  const auto space = make_space();
  EXPECT_THROW(space.validate({19.0, 3.0, 0.01, 0.9}), std::invalid_argument);
  EXPECT_THROW(space.validate({40.5, 3.0, 0.01, 0.9}), std::invalid_argument);
  EXPECT_THROW(space.validate({40.0, 3.0, 0.2, 0.9}), std::invalid_argument);
  EXPECT_THROW(space.validate({40.0, 3.0}), std::invalid_argument);
}

TEST(HyperParameterSpace, SamePointComparison) {
  const auto space = make_space();
  const Configuration a{40.0, 3.0, 0.01, 0.9};
  Configuration b = a;
  EXPECT_TRUE(space.same_point(a, b));
  b[2] = 0.01 * (1.0 + 1e-12);
  EXPECT_TRUE(space.same_point(a, b));
  b[0] = 41.0;
  EXPECT_FALSE(space.same_point(a, b));
}

}  // namespace
}  // namespace hp::core
