#pragma once
// A cheap deterministic objective used by the optimizer unit tests:
//   error(x) = (x0_unit - 0.3)^2 + 0.5 * (x1_unit - 0.7)^2   (minimum 0)
//   measured power = 100 * x0_unit  (so a budget of 60 W means x0 <= 0.6)
// Every evaluation costs a fixed amount of virtual time.

#include <atomic>
#include <cmath>

#include "core/objective.hpp"
#include "core/search_space.hpp"

namespace hp::core::testing {

inline HyperParameterSpace fake_space() {
  return HyperParameterSpace({
      {"a", ParameterKind::Continuous, 0.0, 1.0, true},
      {"b", ParameterKind::Continuous, 0.0, 1.0, false},
  });
}

class FakeObjective final : public Objective {
 public:
  explicit FakeObjective(HyperParameterSpace space, double cost_s = 10.0,
                         double chance_error = 0.9)
      : space_(std::move(space)), cost_s_(cost_s), chance_(chance_error) {}

  [[nodiscard]] EvaluationRecord evaluate(
      const Configuration& config,
      const EarlyTerminationRule* early_termination) override {
    EvaluationRecord r = evaluate_detached(config, early_termination);
    clock_.advance(r.cost_s);
    return r;
  }

  // The fake is a pure function of the configuration, so the detached path
  // is the whole computation; evaluate() just adds the clock charge.
  [[nodiscard]] bool supports_concurrent_evaluation() const noexcept override {
    return concurrent_;
  }
  [[nodiscard]] EvaluationRecord evaluate_detached(
      const Configuration& config,
      const EarlyTerminationRule* early_termination) override {
    evaluations_.fetch_add(1, std::memory_order_relaxed);
    EvaluationRecord r;
    r.config = config;
    const std::vector<double> u = space_.encode(config);
    const bool diverges = u[1] > diverge_above_;
    if (diverges && early_termination != nullptr) {
      r.status = EvaluationStatus::EarlyTerminated;
      r.test_error = chance_;
      r.diverged = true;
      r.cost_s = cost_s_ * 0.1;
    } else {
      r.status = EvaluationStatus::Completed;
      r.diverged = diverges;
      r.test_error = diverges ? chance_
                              : (u[0] - 0.3) * (u[0] - 0.3) +
                                    0.5 * (u[1] - 0.7) * (u[1] - 0.7);
      r.cost_s = cost_s_;
      r.measured_power_w = 100.0 * u[0];
      r.measured_memory_mb = 1000.0 * u[1];
    }
    return r;
  }

  [[nodiscard]] Clock& clock() override { return clock_; }

  [[nodiscard]] std::size_t evaluations() const noexcept {
    return evaluations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] VirtualClock& virtual_clock() noexcept { return clock_; }
  void set_diverge_above(double threshold) { diverge_above_ = threshold; }
  /// Tests covering the serial-objective fallback turn this off.
  void set_supports_concurrent(bool on) { concurrent_ = on; }

 private:
  HyperParameterSpace space_;
  double cost_s_;
  double chance_;
  double diverge_above_ = 2.0;  // no divergence by default
  bool concurrent_ = true;
  VirtualClock clock_;
  std::atomic<std::size_t> evaluations_{0};
};

}  // namespace hp::core::testing
