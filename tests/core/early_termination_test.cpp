#include "core/early_termination.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hp::core {
namespace {

TEST(EarlyTermination, ValidatesConstruction) {
  EXPECT_THROW(EarlyTerminationRule(0), std::invalid_argument);
  EXPECT_THROW(EarlyTerminationRule(2, 0.0), std::invalid_argument);
  EXPECT_THROW(EarlyTerminationRule(2, 1.5), std::invalid_argument);
  EXPECT_THROW(EarlyTerminationRule(2, 0.9, 1.0), std::invalid_argument);
  EXPECT_THROW(EarlyTerminationRule(2, 0.9, -0.1), std::invalid_argument);
}

TEST(EarlyTermination, NeverFiresBeforeObservationWindow) {
  const EarlyTerminationRule rule(3, 0.9, 0.05);
  EXPECT_FALSE(rule.should_terminate(1, 0.9));
  EXPECT_FALSE(rule.should_terminate(2, 0.95));
}

TEST(EarlyTermination, FiresOnChanceLevelErrorAfterWindow) {
  const EarlyTerminationRule rule(2, 0.9, 0.05);
  EXPECT_TRUE(rule.should_terminate(2, 0.9));
  EXPECT_TRUE(rule.should_terminate(2, 0.88));  // within margin of chance
  EXPECT_TRUE(rule.should_terminate(5, 0.91));
}

TEST(EarlyTermination, SparesConvergingRuns) {
  const EarlyTerminationRule rule(2, 0.9, 0.05);
  EXPECT_FALSE(rule.should_terminate(2, 0.6));
  EXPECT_FALSE(rule.should_terminate(10, 0.02));
}

TEST(EarlyTermination, ThresholdMatchesMargin) {
  const EarlyTerminationRule rule(2, 0.9, 0.05);
  EXPECT_DOUBLE_EQ(rule.convergence_threshold(), 0.9 * 0.95);
  // Just below threshold: converging; at threshold: terminated.
  EXPECT_FALSE(rule.should_terminate(3, 0.9 * 0.95 - 1e-9));
  EXPECT_TRUE(rule.should_terminate(3, 0.9 * 0.95));
}

TEST(EarlyTermination, AccessorsReportConstruction) {
  const EarlyTerminationRule rule(4, 0.5, 0.1);
  EXPECT_EQ(rule.check_after_epochs(), 4u);
  EXPECT_DOUBLE_EQ(rule.chance_error(), 0.5);
}

TEST(EarlyTermination, DefaultRuleMatchesTenClassChance) {
  const EarlyTerminationRule rule;
  EXPECT_DOUBLE_EQ(rule.chance_error(), 0.9);
  EXPECT_EQ(rule.check_after_epochs(), 2u);
}

}  // namespace
}  // namespace hp::core
