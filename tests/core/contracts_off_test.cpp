// Compiled-out semantics of the contract layer: this TU forces
// HP_CONTRACTS to 0 (overriding the build-wide definition) before
// including contracts.hpp, mirroring what a Release build does tree-wide.
// The checked macros must become no-ops that do not even evaluate their
// operands; HP_ENFORCE must keep firing.
//
// Only contracts.hpp may be included under the override: the rest of the
// library was compiled with the build-wide setting, and mixing the two
// within one TU would test nothing.

#ifdef HP_CONTRACTS
#undef HP_CONTRACTS
#endif
#define HP_CONTRACTS 0

#include "core/contracts.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace hp::core {
namespace {

static_assert(HP_CONTRACTS == 0, "this TU must compile contracts out");

TEST(ContractsOff, ChecksAreNoOps) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> poisoned{nan};
  EXPECT_NO_THROW({
    HP_ASSERT(false, "would fire in a checked build");
    HP_REQUIRE(false);
    HP_BOUNDS(std::size_t{5}, std::size_t{2});
    HP_CHECK_FINITE(nan, "nan");
    HP_CHECK_ALL_FINITE(poisoned, "poisoned");
  });
}

TEST(ContractsOff, ConditionsAreNotEvaluated) {
  // Matches the assert() model: a compiled-out contract must cost zero,
  // so its operands are never evaluated.
  int evaluations = 0;
  // [[maybe_unused]]: with contracts compiled out the macro never calls it,
  // which is exactly what the test demonstrates.
  [[maybe_unused]] const auto probe = [&evaluations] {
    ++evaluations;
    return false;
  };
  HP_ASSERT(probe());
  HP_REQUIRE(probe(), "detail");
  HP_BOUNDS((++evaluations, std::size_t{9}), std::size_t{1});
  HP_CHECK_FINITE((++evaluations,
                   std::numeric_limits<double>::quiet_NaN()),
                  "never read");
  EXPECT_EQ(evaluations, 0);
}

TEST(ContractsOff, EnforceStillFires) {
  EXPECT_THROW(HP_ENFORCE(false, "load-bearing even in Release"),
               ContractViolation);
  int evaluations = 0;
  EXPECT_NO_THROW(HP_ENFORCE(++evaluations > 0, "passes"));
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace hp::core
