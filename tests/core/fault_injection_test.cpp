#include "core/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <vector>

#include "core/resilience.hpp"
#include "fake_objective.hpp"

namespace hp::core {
namespace {

Configuration config_at(double a, double b) { return {a, b}; }

TEST(FaultInjection, ScheduleIsAPureFunctionOfSeedConfigAndAttempt) {
  testing::FakeObjective inner(testing::fake_space());
  FaultSpec spec;
  spec.failure_rate = 0.5;
  FaultInjectingObjective a(inner, spec);
  FaultInjectingObjective b(inner, spec);
  for (int i = 0; i < 32; ++i) {
    const Configuration config = config_at(0.01 * i, 1.0 - 0.02 * i);
    for (std::size_t attempt = 1; attempt <= 3; ++attempt) {
      EXPECT_EQ(a.scheduled_fault(config, attempt),
                b.scheduled_fault(config, attempt))
          << "config " << i << " attempt " << attempt;
    }
  }
}

TEST(FaultInjection, ScheduleVariesAcrossSeedsConfigsAndAttempts) {
  testing::FakeObjective inner(testing::fake_space());
  FaultSpec spec;
  spec.failure_rate = 0.5;
  FaultInjectingObjective base(inner, spec);
  FaultSpec other = spec;
  other.seed = spec.seed + 1;
  FaultInjectingObjective reseeded(inner, other);
  int differs_by_seed = 0, differs_by_attempt = 0;
  for (int i = 0; i < 64; ++i) {
    const Configuration config = config_at(0.013 * i, 0.007 * i);
    if (base.scheduled_fault(config, 1) != reseeded.scheduled_fault(config, 1)) {
      ++differs_by_seed;
    }
    if (base.scheduled_fault(config, 1) != base.scheduled_fault(config, 2)) {
      ++differs_by_attempt;
    }
  }
  EXPECT_GT(differs_by_seed, 0);
  EXPECT_GT(differs_by_attempt, 0);
}

TEST(FaultInjection, RateZeroNeverFailsRateOneAlwaysFails) {
  testing::FakeObjective inner(testing::fake_space());
  FaultSpec never;
  never.failure_rate = 0.0;
  FaultInjectingObjective clean(inner, never);
  FaultSpec always;
  always.failure_rate = 1.0;
  FaultInjectingObjective doomed(inner, always);
  for (int i = 0; i < 16; ++i) {
    const Configuration config = config_at(0.05 * i, 0.9 - 0.05 * i);
    EXPECT_FALSE(clean.scheduled_fault(config, 1).has_value());
    EXPECT_TRUE(doomed.scheduled_fault(config, 1).has_value());
  }
  const EvaluationRecord record = clean.evaluate(config_at(0.3, 0.7), nullptr);
  EXPECT_EQ(record.status, EvaluationStatus::Completed);
  EXPECT_EQ(clean.injected_failures(), 0u);
  EXPECT_THROW((void)doomed.evaluate(config_at(0.3, 0.7), nullptr),
               EvalFailure);
  EXPECT_EQ(doomed.injected_failures(), 1u);
}

TEST(FaultInjection, KindWeightsSelectTheThrownKind) {
  testing::FakeObjective inner(testing::fake_space());
  FaultSpec spec;
  spec.failure_rate = 1.0;
  spec.transient_weight = 0.0;
  spec.persistent_weight = 1.0;
  FaultInjectingObjective faulty(inner, spec);
  const Configuration config = config_at(0.2, 0.4);
  const auto scheduled = faulty.scheduled_fault(config, 1);
  ASSERT_TRUE(scheduled.has_value());
  EXPECT_EQ(*scheduled, FailureKind::Persistent);
  try {
    (void)faulty.evaluate_detached(config, nullptr);
    FAIL() << "expected EvalFailure";
  } catch (const EvalFailure& e) {
    EXPECT_EQ(e.kind(), FailureKind::Persistent);
    EXPECT_DOUBLE_EQ(e.cost_s(), spec.failed_attempt_cost_s);
  }
}

TEST(FaultInjection, AllZeroWeightsFallBackToTransient) {
  testing::FakeObjective inner(testing::fake_space());
  FaultSpec spec;
  spec.failure_rate = 1.0;
  spec.transient_weight = 0.0;
  FaultInjectingObjective faulty(inner, spec);
  const auto scheduled = faulty.scheduled_fault(config_at(0.5, 0.5), 1);
  ASSERT_TRUE(scheduled.has_value());
  EXPECT_EQ(*scheduled, FailureKind::Transient);
}

TEST(FaultInjection, HashConfigurationSeparatesNearbyConfigs) {
  std::set<std::uint64_t> hashes;
  for (int i = 0; i < 100; ++i) {
    hashes.insert(hash_configuration(config_at(0.001 * i, 0.999 - 0.001 * i)));
  }
  EXPECT_EQ(hashes.size(), 100u);
  EXPECT_EQ(hash_configuration(config_at(0.25, 0.75)),
            hash_configuration(config_at(0.25, 0.75)));
}

TEST(FaultInjection, FailureRateIsRoughlyHonored) {
  testing::FakeObjective inner(testing::fake_space());
  FaultSpec spec;
  spec.failure_rate = 0.2;
  FaultInjectingObjective faulty(inner, spec);
  int failures = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    if (faulty.scheduled_fault(config_at(0.0007 * i, 0.0003 * i), 1)) {
      ++failures;
    }
  }
  EXPECT_GT(failures, n / 10);   // > 10%
  EXPECT_LT(failures, 3 * n / 10);  // < 30%
}

TEST(FaultInjection, RetriesRecoverScheduledTransientFaults) {
  // End-to-end with the resilience layer: find a config whose first
  // attempt is scheduled to fail but whose second is clean, then check the
  // evaluator lands it in 2 attempts with the injected cost accounted.
  testing::FakeObjective inner(testing::fake_space());
  FaultSpec spec;
  spec.failure_rate = 0.4;
  FaultInjectingObjective faulty(inner, spec);
  std::optional<Configuration> pick;
  for (int i = 0; i < 256 && !pick; ++i) {
    const Configuration config = config_at(0.003 * i, 0.7);
    if (faulty.scheduled_fault(config, 1) && !faulty.scheduled_fault(config, 2)) {
      pick = config;
    }
  }
  ASSERT_TRUE(pick.has_value()) << "no 1-fail-then-pass config in probe set";
  RetryPolicy policy;
  policy.backoff_initial_s = 30.0;
  policy.backoff_jitter = 0.0;
  ResilientEvaluator evaluator(faulty, policy, /*seed=*/9);
  const ResilientOutcome outcome = evaluator.evaluate(*pick, nullptr, 0, false);
  EXPECT_FALSE(outcome.failed);
  EXPECT_EQ(outcome.record.attempts, 2u);
  EXPECT_EQ(faulty.injected_failures(), 1u);
  // injected failure (5 s) + backoff (30 s) + real evaluation (10 s).
  EXPECT_DOUBLE_EQ(outcome.record.cost_s, 45.0);
  EXPECT_DOUBLE_EQ(inner.virtual_clock().now_s(), 45.0);
}

TEST(FaultInjection, EveryKindWeightZeroRateZeroPassesThroughUntouched) {
  testing::FakeObjective inner(testing::fake_space());
  FaultSpec spec;
  spec.failure_rate = 0.0;
  FaultInjectingObjective faulty(inner, spec);
  const Configuration config = config_at(0.3, 0.7);
  const EvaluationRecord direct = inner.evaluate_detached(config, nullptr);
  const EvaluationRecord wrapped = faulty.evaluate_detached(config, nullptr);
  EXPECT_EQ(direct.test_error, wrapped.test_error);
  EXPECT_EQ(direct.cost_s, wrapped.cost_s);
  EXPECT_EQ(faulty.supports_concurrent_evaluation(),
            inner.supports_concurrent_evaluation());
}

}  // namespace
}  // namespace hp::core
