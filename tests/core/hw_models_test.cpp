#include "core/hw_models.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace hp::core {
namespace {

/// Synthetic profiling data y = w . z (+ noise), z in positive ranges like
/// the paper's structural hyper-parameters.
struct SyntheticData {
  std::vector<std::vector<double>> z;
  std::vector<double> y;
};

SyntheticData make_linear_data(std::size_t n, double noise_sd,
                               std::uint64_t seed, double intercept = 0.0) {
  stats::Rng rng(seed);
  SyntheticData data;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = rng.uniform(20.0, 80.0);
    const double k = rng.uniform(2.0, 5.0);
    const double u = rng.uniform(200.0, 700.0);
    data.z.push_back({f, k, u});
    data.y.push_back(intercept + 0.8 * f + 3.0 * k + 0.05 * u +
                     rng.gaussian(0.0, noise_sd));
  }
  return data;
}

TEST(HardwareModel, DefaultConstructedPredictThrows) {
  HardwareModel model;
  EXPECT_THROW((void)model.predict(std::vector<double>{1.0}),
               std::logic_error);
}

TEST(HardwareModel, PredictIsDotProductPlusIntercept) {
  HardwareModel model(ModelForm::Linear, linalg::Vector{2.0, 3.0}, 1.0, 0.1);
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{1.0, 2.0}), 9.0);
  EXPECT_EQ(model.input_dimension(), 2u);
}

TEST(HardwareModel, QuadraticFormExpandsFeatures) {
  HardwareModel model(ModelForm::Quadratic,
                      linalg::Vector{1.0, 0.0, 0.5, 0.0}, 0.0, 0.0);
  // prediction = 1*z0 + 0.5*z0^2.
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{2.0, 0.0}), 4.0);
  EXPECT_EQ(model.input_dimension(), 2u);
}

TEST(HardwareModel, DimensionMismatchThrows) {
  HardwareModel model(ModelForm::Linear, linalg::Vector{1.0, 2.0}, 0.0, 0.0);
  EXPECT_THROW((void)model.predict(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(TrainHardwareModel, RecoversNoiselessLinearModel) {
  const SyntheticData data = make_linear_data(60, 0.0, 1);
  HardwareModelOptions opt;
  opt.fit_intercept = false;
  const TrainedHardwareModel m = train_hardware_model(data.z, data.y, opt);
  EXPECT_NEAR(m.model.weights()[0], 0.8, 1e-8);
  EXPECT_NEAR(m.model.weights()[1], 3.0, 1e-8);
  EXPECT_NEAR(m.model.weights()[2], 0.05, 1e-8);
  EXPECT_LT(m.cv.rmspe, 1e-6);
  EXPECT_NEAR(m.cv.r_squared, 1.0, 1e-9);
}

TEST(TrainHardwareModel, CvReportsRealisticErrorUnderNoise) {
  const SyntheticData data = make_linear_data(100, 5.0, 2);
  const TrainedHardwareModel m = train_hardware_model(data.z, data.y);
  EXPECT_GT(m.cv.rmspe, 0.5);
  EXPECT_LT(m.cv.rmspe, 15.0);
  EXPECT_GT(m.model.residual_sd(), 1.0);
  EXPECT_EQ(m.cv.fold_rmspe.size(), 10u);  // paper's 10-fold CV
  EXPECT_EQ(m.sample_count, 100u);
}

TEST(TrainHardwareModel, InterceptImprovesOffsetData) {
  const SyntheticData data = make_linear_data(80, 0.5, 3, /*intercept=*/50.0);
  HardwareModelOptions with;
  with.fit_intercept = true;
  HardwareModelOptions without;
  without.fit_intercept = false;
  const auto m_with = train_hardware_model(data.z, data.y, with);
  const auto m_without = train_hardware_model(data.z, data.y, without);
  EXPECT_LT(m_with.cv.rmspe, m_without.cv.rmspe);
  EXPECT_NEAR(m_with.model.intercept(), 50.0, 5.0);
}

TEST(TrainHardwareModel, NonnegativeClampsAntagonisticFeature) {
  stats::Rng rng(4);
  SyntheticData data;
  for (std::size_t i = 0; i < 60; ++i) {
    const double a = rng.uniform(1.0, 10.0);
    const double b = rng.uniform(1.0, 10.0);
    data.z.push_back({a, b});
    data.y.push_back(2.0 * a - 1.0 * b + 30.0);
  }
  HardwareModelOptions opt;
  opt.nonnegative = true;
  opt.fit_intercept = true;
  const auto m = train_hardware_model(data.z, data.y, opt);
  EXPECT_GE(m.model.weights()[0], 0.0);
  EXPECT_GE(m.model.weights()[1], 0.0);
}

TEST(TrainHardwareModel, QuadraticFitsCurvedData) {
  stats::Rng rng(5);
  SyntheticData data;
  for (std::size_t i = 0; i < 80; ++i) {
    const double f = rng.uniform(20.0, 80.0);
    data.z.push_back({f});
    data.y.push_back(10.0 + 0.02 * f * f);
  }
  HardwareModelOptions linear;
  linear.fit_intercept = true;
  linear.nonnegative = false;
  HardwareModelOptions quad = linear;
  quad.form = ModelForm::Quadratic;
  const auto m_lin = train_hardware_model(data.z, data.y, linear);
  const auto m_quad = train_hardware_model(data.z, data.y, quad);
  EXPECT_LT(m_quad.cv.rmspe, m_lin.cv.rmspe);
}

TEST(TrainHardwareModel, ValidatesInput) {
  EXPECT_THROW((void)train_hardware_model({}, {}), std::invalid_argument);
  EXPECT_THROW((void)train_hardware_model({{1.0}}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW((void)train_hardware_model({{1.0}, {1.0, 2.0}}, {1.0, 2.0}),
               std::invalid_argument);
  // Fewer samples than folds.
  std::vector<std::vector<double>> z(5, {1.0});
  std::vector<double> y(5, 1.0);
  EXPECT_THROW((void)train_hardware_model(z, y), std::invalid_argument);
}

TEST(TrainHardwareModel, DeterministicForSeed) {
  const SyntheticData data = make_linear_data(50, 2.0, 6);
  HardwareModelOptions opt;
  opt.seed = 123;
  const auto a = train_hardware_model(data.z, data.y, opt);
  const auto b = train_hardware_model(data.z, data.y, opt);
  EXPECT_DOUBLE_EQ(a.cv.rmspe, b.cv.rmspe);
  EXPECT_DOUBLE_EQ(a.model.weights()[0], b.model.weights()[0]);
}

TEST(TrainFromProfiles, PowerAndMemoryModels) {
  std::vector<hw::ProfileSample> samples;
  stats::Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    hw::ProfileSample s;
    const double f = rng.uniform(20.0, 80.0);
    s.z = {f};
    s.power_w = 30.0 + 0.5 * f;
    s.memory_mb = 400.0 + 2.0 * f;
    samples.push_back(s);
  }
  const auto power = train_power_model(samples);
  EXPECT_LT(power.cv.rmspe, 0.1);
  const auto memory = train_memory_model(samples);
  ASSERT_TRUE(memory.has_value());
  EXPECT_LT(memory->cv.rmspe, 0.1);
}

TEST(TrainFromProfiles, MemoryModelAbsentWithoutMeasurements) {
  std::vector<hw::ProfileSample> samples;
  for (int i = 0; i < 20; ++i) {
    hw::ProfileSample s;
    s.z = {static_cast<double>(20 + i)};
    s.power_w = 5.0;
    samples.push_back(s);  // no memory_mb (Tegra)
  }
  EXPECT_FALSE(train_memory_model(samples).has_value());
}

}  // namespace
}  // namespace hp::core
