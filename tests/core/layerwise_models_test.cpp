#include "core/layerwise_models.hpp"

#include <gtest/gtest.h>

#include "core/spaces.hpp"
#include "hw/device.hpp"
#include "stats/metrics.hpp"

namespace hp::core {
namespace {

std::vector<hw::ProfileSample> profiled_with_timings(std::size_t count,
                                                     std::uint64_t seed) {
  const BenchmarkProblem problem = cifar10_problem();
  hw::GpuSimulator simulator(hw::gtx1070(), seed);
  hw::ProfilerOptions options;
  options.collect_layer_timings = true;
  hw::InferenceProfiler profiler(simulator, options);
  stats::Rng rng(seed);
  std::vector<nn::CnnSpec> specs;
  while (specs.size() < count) {
    const auto config = problem.space().sample(rng);
    const auto spec = problem.to_cnn_spec(config);
    if (nn::is_feasible(spec)) specs.push_back(spec);
  }
  return profiler.profile_all(specs);
}

TEST(LayerFeatures, ExtractedFromWorkload) {
  nn::LayerWorkload layer;
  layer.macs = 100;
  layer.activation_count = 50;
  layer.weight_count = 25;
  const LayerFeatures f = layer_features(layer);
  EXPECT_EQ(f.as_vector(), (std::vector<double>{100.0, 50.0, 25.0}));
}

TEST(LayerwiseLatency, RequiresTimings) {
  std::vector<hw::ProfileSample> no_timings(3);
  EXPECT_THROW((void)LayerwiseLatencyModel::train(no_timings),
               std::invalid_argument);
}

TEST(LayerwiseLatency, UntrainedPredictThrows) {
  LayerwiseLatencyModel model;
  EXPECT_FALSE(model.trained());
  nn::CnnSpec spec;
  spec.input = {1, 1, 28, 28};
  spec.conv_stages = {{20, 3, 2}};
  spec.dense_stages = {{200}};
  spec.num_classes = 10;
  EXPECT_THROW((void)model.predict_network_ms(spec), std::logic_error);
}

TEST(LayerwiseLatency, LearnsPerTypeModelsWithLowError) {
  const auto samples = profiled_with_timings(60, 3);
  const auto [model, report] = LayerwiseLatencyModel::train(samples);
  EXPECT_TRUE(model.trained());
  // All four layer types appear in the CIFAR space.
  const auto types = model.known_types();
  EXPECT_GE(types.size(), 3u);
  // Whole-network latency predicted within ~10% (per-layer measurement
  // noise is 3%; the roofline max() is the residual nonlinearity).
  EXPECT_LT(report.total_latency_rmspe, 12.0);
  for (const auto& [type, tr] : report.per_type) {
    EXPECT_GT(tr.layer_count, 0u) << type;
  }
}

TEST(LayerwiseLatency, GeneralizesToHeldOutConfigs) {
  const auto train_samples = profiled_with_timings(60, 3);
  const auto [model, report] = LayerwiseLatencyModel::train(train_samples);
  const auto held_out = profiled_with_timings(20, 99);
  std::vector<double> actual, predicted;
  for (const auto& s : held_out) {
    actual.push_back(s.latency_ms);
    predicted.push_back(model.predict_network_ms(s.spec));
  }
  EXPECT_LT(stats::rmspe(actual, predicted), 15.0);
}

TEST(LayerwiseLatency, PredictionsNonNegative) {
  const auto samples = profiled_with_timings(40, 5);
  const auto [model, report] = LayerwiseLatencyModel::train(samples);
  LayerFeatures tiny;  // all zeros
  for (const auto& type : model.known_types()) {
    EXPECT_GE(model.predict_layer_ms(type, tiny), 0.0) << type;
  }
}

TEST(LayerwiseLatency, UnknownTypePredictsZero) {
  const auto samples = profiled_with_timings(40, 5);
  const auto [model, report] = LayerwiseLatencyModel::train(samples);
  EXPECT_EQ(model.predict_layer_ms("batchnorm", LayerFeatures{}), 0.0);
}

TEST(EnergyPredictor, RequiresTrainedLatencyModel) {
  HardwareModel power(ModelForm::Linear, linalg::Vector{1.0}, 0.0, 0.0);
  EXPECT_THROW(EnergyPredictor(power, LayerwiseLatencyModel{}),
               std::invalid_argument);
}

TEST(EnergyPredictor, PredictsEnergyWithinTolerance) {
  const auto samples = profiled_with_timings(80, 7);
  auto [latency, report] = LayerwiseLatencyModel::train(samples);
  const auto power = train_power_model(samples);
  const EnergyPredictor energy(power.model, latency);

  const auto held_out = profiled_with_timings(20, 123);
  std::vector<double> actual, predicted;
  for (const auto& s : held_out) {
    actual.push_back(s.energy_j());
    predicted.push_back(energy.predict_energy_j(s.spec));
  }
  EXPECT_LT(stats::rmspe(actual, predicted), 18.0);
}

TEST(EnergyPredictor, EnergyGrowsWithNetworkSize) {
  const auto samples = profiled_with_timings(80, 7);
  auto [latency, report] = LayerwiseLatencyModel::train(samples);
  const auto power = train_power_model(samples);
  const EnergyPredictor energy(power.model, latency);
  const BenchmarkProblem problem = cifar10_problem();
  const Configuration small{20, 2, 2, 20, 2, 2, 20, 2, 2, 200, 0.01, 0.9, 0.001};
  const Configuration large{80, 4, 1, 80, 4, 2, 80, 3, 1, 700, 0.01, 0.9, 0.001};
  EXPECT_GT(energy.predict_energy_j(problem.to_cnn_spec(large)),
            energy.predict_energy_j(problem.to_cnn_spec(small)));
}

}  // namespace
}  // namespace hp::core
