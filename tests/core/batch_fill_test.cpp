#include "core/batch_fill.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hp::core {
namespace {

// propose_one that records which RNG stream it was handed by returning the
// stream's first uniform draw as a one-dimensional "configuration".
Configuration first_draw(stats::Rng& rng) { return {rng.uniform()}; }

TEST(BatchFill, OneProposalPerSampleStream) {
  const std::uint64_t seed = 42;
  const auto batch = fill_proposal_batch(seed, /*first=*/3, /*count=*/4,
                                         first_draw);
  ASSERT_EQ(batch.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    stats::Rng expected(stats::stream_seed(seed, 3 + j));
    EXPECT_EQ(batch[j][0], expected.uniform());
  }
}

TEST(BatchFill, IndexPure) {
  // Sample i's proposal is the same whether it arrives in a round of one
  // or mid-way through a bigger round — the basis of batched determinism.
  const std::uint64_t seed = 7;
  const auto big = fill_proposal_batch(seed, 0, 8, first_draw);
  for (std::size_t i = 0; i < 8; ++i) {
    const auto solo = fill_proposal_batch(seed, i, 1, first_draw);
    ASSERT_EQ(solo.size(), 1u);
    EXPECT_EQ(solo[0], big[i]);
  }
}

TEST(BatchFill, StopsAtExhaustionWithoutPadding) {
  int remaining = 2;
  const auto batch = fill_proposal_batch(
      1, 0, 5, [&](stats::Rng&) -> Configuration { --remaining; return {0.0}; },
      [&] { return remaining == 0; });
  // Two proposals, then exhausted: the short round is returned as-is.
  EXPECT_EQ(batch.size(), 2u);
}

TEST(BatchFill, ExhaustedCheckedBeforeFirstProposal) {
  int proposals = 0;
  const auto batch = fill_proposal_batch(
      1, 0, 3, [&](stats::Rng&) -> Configuration { ++proposals; return {0.0}; },
      [] { return true; });
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(proposals, 0);
}

TEST(BatchFill, LiarPushedBetweenProposalsAndPoppedOnce) {
  std::vector<Configuration> lies;
  int pops = 0;
  ConstantLiarHooks liar;
  liar.push_lie = [&](const Configuration& c) { lies.push_back(c); };
  liar.pop_lies = [&] { ++pops; };
  const auto batch = fill_proposal_batch(9, 0, 3, first_draw, {}, liar);
  ASSERT_EQ(batch.size(), 3u);
  // A lie helps only proposals still to come: pushed after proposals 0 and
  // 1, never after the last.
  ASSERT_EQ(lies.size(), 2u);
  EXPECT_EQ(lies[0], batch[0]);
  EXPECT_EQ(lies[1], batch[1]);
  EXPECT_EQ(pops, 1);
}

TEST(BatchFill, NoLieInRoundOfOne) {
  int pushes = 0;
  int pops = 0;
  ConstantLiarHooks liar;
  liar.push_lie = [&](const Configuration&) { ++pushes; };
  liar.pop_lies = [&] { ++pops; };
  const auto batch = fill_proposal_batch(9, 5, 1, first_draw, {}, liar);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(pushes, 0);
  EXPECT_EQ(pops, 0);  // nothing was pushed, so nothing to pop
}

}  // namespace
}  // namespace hp::core
