// Contract-layer tests: the macros fire as ContractViolation in checked
// builds (this TU), and the violation object is diagnosable (kind, file,
// line, expression). The sibling TU contracts_off_test.cpp compiles the
// same macros with HP_CONTRACTS forced to 0 and asserts they are no-ops.
//
// These tests require a checked build (HP_CONTRACTS=1) — the default for
// every CMAKE_BUILD_TYPE except Release. In a Release build the whole
// file reduces to the static sanity checks at the bottom.

#include "core/contracts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/hw_models.hpp"
#include "core/search_space.hpp"
#include "gp/gaussian_process.hpp"
#include "gp/kernel.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace hp::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

#if HP_CONTRACTS

TEST(Contracts, AssertFiresWithKindAndLocation) {
  try {
    HP_ASSERT(1 + 1 == 3, "arithmetic broke");
    FAIL() << "HP_ASSERT did not fire";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), ContractViolation::Kind::kAssert);
    EXPECT_STREQ(v.expression(), "1 + 1 == 3");
    EXPECT_NE(std::string(v.file()).find("contracts_test.cpp"),
              std::string::npos);
    EXPECT_GT(v.line(), 0);
    EXPECT_NE(std::string(v.what()).find("arithmetic broke"),
              std::string::npos);
    EXPECT_NE(std::string(v.what()).find("HP_ASSERT"), std::string::npos);
  }
}

TEST(Contracts, RequireFiresWithoutDetail) {
  try {
    HP_REQUIRE(false);
    FAIL() << "HP_REQUIRE did not fire";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), ContractViolation::Kind::kRequire);
    EXPECT_STREQ(v.expression(), "false");
  }
}

TEST(Contracts, PassingChecksAreSilent) {
  EXPECT_NO_THROW({
    HP_ASSERT(true);
    HP_REQUIRE(2 > 1, "ordering");
    HP_BOUNDS(std::size_t{2}, std::size_t{3});
    HP_CHECK_FINITE(0.0, "zero");
    HP_CHECK_ALL_FINITE(std::vector<double>({1.0, 2.0}), "vec");
    HP_ENFORCE(true, "fine");
  });
}

TEST(Contracts, BoundsReportsIndexAndSize) {
  try {
    HP_BOUNDS(std::size_t{7}, std::size_t{3});
    FAIL() << "HP_BOUNDS did not fire";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), ContractViolation::Kind::kBounds);
    EXPECT_NE(std::string(v.what()).find("index 7 not in [0, 3)"),
              std::string::npos);
  }
}

TEST(Contracts, CheckFiniteDistinguishesNaN) {
  try {
    HP_CHECK_FINITE(kNaN, "objective value");
    FAIL() << "HP_CHECK_FINITE did not fire";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), ContractViolation::Kind::kFinite);
    EXPECT_NE(std::string(v.what()).find("objective value is NaN"),
              std::string::npos);
  }
  try {
    HP_CHECK_FINITE(std::numeric_limits<double>::infinity(), "power draw");
    FAIL() << "HP_CHECK_FINITE did not fire";
  } catch (const ContractViolation& v) {
    EXPECT_NE(std::string(v.what()).find("power draw is non-finite"),
              std::string::npos);
  }
}

TEST(Contracts, CheckAllFiniteScansRange) {
  const std::vector<double> poisoned{1.0, kNaN, 3.0};
  EXPECT_THROW(HP_CHECK_ALL_FINITE(poisoned, "profiling targets"),
               ContractViolation);
}

// --- Contracts threaded through linalg -----------------------------------

TEST(Contracts, VectorBoundsViolation) {
  linalg::Vector v(3);
  EXPECT_THROW((void)v[3], ContractViolation);
}

TEST(Contracts, MatrixShapeViolation) {
  linalg::Matrix a(2, 2);
  linalg::Matrix b(3, 2);
  EXPECT_THROW(a += b, ContractViolation);
}

TEST(Contracts, CholeskySolveDimensionViolation) {
  const linalg::Cholesky chol(linalg::Matrix{{4.0, 0.0}, {0.0, 9.0}});
  EXPECT_THROW((void)chol.solve_lower(linalg::Vector(3)), ContractViolation);
  EXPECT_THROW((void)chol.solve_upper(linalg::Vector(3)), ContractViolation);
}

// --- Contracts threaded through the search space -------------------------

HyperParameterSpace tiny_space() {
  return HyperParameterSpace({
      {"units", ParameterKind::Integer, 1.0, 8.0, true},
      {"lr", ParameterKind::LogContinuous, 1e-4, 1e-1, false},
  });
}

TEST(Contracts, DecodeRejectsNaNUnitCoordinate) {
  const auto space = tiny_space();
  EXPECT_THROW((void)space.decode({0.5, kNaN}), ContractViolation);
}

TEST(Contracts, ValidateRejectsNaNConfiguration) {
  const auto space = tiny_space();
  // NaN compares false against both range bounds, so without the contract
  // this configuration silently validated.
  EXPECT_THROW(space.validate({kNaN, 1e-2}), ContractViolation);
}

// --- Contracts threaded through the hardware models ----------------------

TEST(Contracts, TrainHardwareModelRejectsNaNFeatures) {
  std::vector<std::vector<double>> z(12, {1.0, 2.0});
  std::vector<double> y(12, 3.0);
  z[7][1] = kNaN;
  EXPECT_THROW((void)train_hardware_model(z, y, {}), ContractViolation);
}

TEST(Contracts, TrainHardwareModelRejectsNaNTargets) {
  const std::vector<std::vector<double>> z(12, {1.0, 2.0});
  std::vector<double> y(12, 3.0);
  y[4] = kNaN;
  EXPECT_THROW((void)train_hardware_model(z, y, {}), ContractViolation);
}

TEST(Contracts, HardwareModelPredictRejectsNaNInput) {
  const HardwareModel model(ModelForm::Linear, linalg::Vector{2.0, 3.0}, 0.5,
                            0.1);
  const std::vector<double> z{1.0, kNaN};
  EXPECT_THROW((void)model.predict(z), ContractViolation);
}

TEST(Contracts, HardwareModelRejectsNonFiniteWeights) {
  EXPECT_THROW(HardwareModel(ModelForm::Linear, linalg::Vector{1.0, kNaN},
                             0.0, 0.1),
               ContractViolation);
  EXPECT_THROW(
      HardwareModel(ModelForm::Linear, linalg::Vector{1.0}, 0.0, kNaN),
      ContractViolation);
}

// --- GP: non-PSD covariance must be reported, not silently mis-predicted --

TEST(Contracts, GpFitRejectsNaNTargets) {
  gp::SquaredExponentialKernel kernel({1.0, {0.5}});
  gp::GaussianProcess gp(kernel, 1e-6);
  linalg::Matrix x(3, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 1.0;
  x(2, 0) = 2.0;
  linalg::Vector y{0.0, kNaN, 1.0};
  EXPECT_THROW(gp.fit(std::move(x), std::move(y)), ContractViolation);
}

#endif  // HP_CONTRACTS

// Death-style check, active in EVERY build type: a covariance that stays
// non-PSD through the whole jitter ladder (NaN kernel entries) must
// surface as a ContractViolation (HP_ENFORCE), never as garbage output.
TEST(Contracts, GpNonPsdCovarianceIsReportedAsContractViolation) {
  gp::SquaredExponentialKernel kernel({1.0, {0.5}});
  gp::GaussianProcess gp(kernel, 1e-6);
  linalg::Matrix x(2, 1);
  x(0, 0) = 0.0;
  x(1, 0) = kNaN;  // poisons the kernel matrix, not the targets
  linalg::Vector y{0.0, 1.0};
  try {
    gp.fit(std::move(x), std::move(y));
    FAIL() << "non-PSD covariance produced a fitted GP";
  } catch (const ContractViolation& v) {
    EXPECT_NE(std::string(v.what()).find("not positive definite"),
              std::string::npos);
  }
}

TEST(Contracts, EnforceIsNeverCompiledOut) {
  EXPECT_THROW(HP_ENFORCE(false, "always on"), ContractViolation);
}

TEST(Contracts, ViolationIsALogicError) {
  // Swallowing contract violations via catch (std::runtime_error&) must be
  // impossible; they are logic errors by construction.
  static_assert(std::is_base_of_v<std::logic_error, ContractViolation>);
  EXPECT_THROW(HP_ENFORCE(false, ""), std::logic_error);
}

}  // namespace
}  // namespace hp::core
