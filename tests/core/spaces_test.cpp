#include "core/spaces.hpp"

#include <gtest/gtest.h>

namespace hp::core {
namespace {

TEST(MnistProblem, HasSixHyperParameters) {
  const BenchmarkProblem p = mnist_problem();
  EXPECT_EQ(p.space().dimension(), 6u);  // Section 4 of the paper
  EXPECT_EQ(p.space().structural_dimension(), 4u);
  EXPECT_EQ(p.name(), "mnist");
  EXPECT_EQ(p.num_classes(), 10u);
  EXPECT_EQ(p.input().h, 28u);
}

TEST(Cifar10Problem, HasThirteenHyperParameters) {
  const BenchmarkProblem p = cifar10_problem();
  EXPECT_EQ(p.space().dimension(), 13u);  // Section 4 of the paper
  EXPECT_EQ(p.space().structural_dimension(), 10u);
  EXPECT_EQ(p.input().c, 3u);
  EXPECT_EQ(p.input().h, 32u);
}

TEST(Problems, PaperRangesRespected) {
  const BenchmarkProblem p = cifar10_problem();
  const auto& space = p.space();
  const auto check = [&](const std::string& name, double lo, double hi) {
    const auto idx = space.index_of(name);
    ASSERT_TRUE(idx.has_value()) << name;
    EXPECT_EQ(space.parameter(*idx).lo, lo) << name;
    EXPECT_EQ(space.parameter(*idx).hi, hi) << name;
  };
  check("conv1_features", 20, 80);
  check("conv2_kernel", 2, 5);
  check("pool3_kernel", 1, 3);
  check("fc1_units", 200, 700);
  check("learning_rate", 0.001, 0.1);
  check("momentum", 0.8, 0.95);
  check("weight_decay", 0.0001, 0.01);
}

TEST(Problems, TrainingParamsAreNotStructural) {
  const BenchmarkProblem p = mnist_problem();
  const auto idx = p.space().index_of("learning_rate");
  ASSERT_TRUE(idx.has_value());
  EXPECT_FALSE(p.space().parameter(*idx).structural);
}

TEST(BenchmarkProblem, ToCnnSpecMapsStagesInOrder) {
  const BenchmarkProblem p = cifar10_problem();
  stats::Rng rng(1);
  const Configuration config = p.space().sample(rng);
  const nn::CnnSpec spec = p.to_cnn_spec(config);
  ASSERT_EQ(spec.conv_stages.size(), 3u);
  ASSERT_EQ(spec.dense_stages.size(), 1u);
  EXPECT_EQ(static_cast<double>(spec.conv_stages[0].features), config[0]);
  EXPECT_EQ(static_cast<double>(spec.conv_stages[1].kernel_size), config[4]);
  EXPECT_EQ(static_cast<double>(spec.dense_stages[0].units), config[9]);
  EXPECT_EQ(spec.input.c, 3u);
}

TEST(BenchmarkProblem, StructuralVectorMatchesSpecVector) {
  const BenchmarkProblem p = mnist_problem();
  stats::Rng rng(2);
  const Configuration config = p.space().sample(rng);
  const auto z_space = p.space().structural_vector(config);
  const auto z_spec = p.to_cnn_spec(config).structural_vector();
  EXPECT_EQ(z_space, z_spec);
}

TEST(BenchmarkProblem, TrainingSettingsExtracted) {
  const BenchmarkProblem p = cifar10_problem();
  Configuration config{40, 3, 2, 40, 3, 2, 40, 3, 2, 300, 0.02, 0.9, 0.001};
  const auto s = p.training_settings(config);
  EXPECT_DOUBLE_EQ(s.learning_rate, 0.02);
  EXPECT_DOUBLE_EQ(s.momentum, 0.9);
  EXPECT_DOUBLE_EQ(s.weight_decay, 0.001);
}

TEST(BenchmarkProblem, MnistWeightDecayDefaulted) {
  // MNIST has no weight-decay parameter; the default applies.
  const BenchmarkProblem p = mnist_problem();
  Configuration config{40, 3, 2, 300, 0.02, 0.9};
  const auto s = p.training_settings(config);
  EXPECT_DOUBLE_EQ(s.weight_decay, 0.0005);
}

TEST(BenchmarkProblem, MostMnistConfigsFeasible) {
  const BenchmarkProblem p = mnist_problem();
  stats::Rng rng(3);
  int feasible = 0;
  for (int i = 0; i < 200; ++i) {
    if (nn::is_feasible(p.to_cnn_spec(p.space().sample(rng)))) ++feasible;
  }
  EXPECT_EQ(feasible, 200);  // single conv stage on 28x28 never collapses
}

TEST(BenchmarkProblem, SomeCifarConfigsInfeasible) {
  // Three conv/pool stages on 32x32 can collapse spatially — the framework
  // must handle this, as Caffe generation failures occur in the paper.
  const BenchmarkProblem p = cifar10_problem();
  stats::Rng rng(4);
  int infeasible = 0;
  for (int i = 0; i < 300; ++i) {
    if (!nn::is_feasible(p.to_cnn_spec(p.space().sample(rng)))) ++infeasible;
  }
  EXPECT_GT(infeasible, 0);
  EXPECT_LT(infeasible, 200);  // but most are fine
}

TEST(TinyProblems, AreFullyUsable) {
  for (const BenchmarkProblem& p : {tiny_mnist_problem(), tiny_cifar_problem()}) {
    stats::Rng rng(5);
    int feasible = 0;
    for (int i = 0; i < 50; ++i) {
      const Configuration c = p.space().sample(rng);
      if (nn::is_feasible(p.to_cnn_spec(c))) ++feasible;
    }
    EXPECT_GT(feasible, 25) << p.name();
  }
}

TEST(BenchmarkProblem, StageCountMismatchThrows) {
  // A space whose structural dimension does not match the stage counts.
  std::vector<ParameterDef> params = {
      {"conv1_features", ParameterKind::Integer, 20, 80, true},
  };
  EXPECT_THROW(BenchmarkProblem("bad", HyperParameterSpace(std::move(params)),
                                nn::Shape{1, 1, 28, 28}, 10, 1, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace hp::core
