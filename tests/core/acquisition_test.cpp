#include "core/acquisition.hpp"

#include <gtest/gtest.h>

#include "core/spaces.hpp"
#include "stats/distributions.hpp"

namespace hp::core {
namespace {

HyperParameterSpace make_space() {
  return HyperParameterSpace({
      {"features", ParameterKind::Integer, 20, 80, true},
      {"lr", ParameterKind::LogContinuous, 0.001, 0.1, false},
  });
}

/// Power model P(z) = z0 (so budget 50 means features <= 50 feasible).
HardwareModel identity_power_model(double residual_sd = 0.0) {
  return HardwareModel(ModelForm::Linear, linalg::Vector{1.0}, 0.0,
                       residual_sd);
}

gp::GaussianProcess fitted_gp() {
  gp::KernelParams p;
  p.length_scales = {0.3, 0.3};
  gp::GaussianProcess gp(gp::Matern52Kernel(p), 1e-6);
  linalg::Matrix x{{0.2, 0.2}, {0.8, 0.8}, {0.5, 0.5}};
  linalg::Vector y{0.3, 0.6, 0.2};
  gp.fit(x, y);
  return gp;
}

TEST(HardwareConstraints, IndicatorRespectsBudgets) {
  ConstraintBudgets budgets;
  budgets.power_w = 50.0;
  HardwareConstraints hc(budgets, identity_power_model(), std::nullopt);
  EXPECT_TRUE(hc.predicted_feasible(std::vector<double>{40.0}));
  EXPECT_FALSE(hc.predicted_feasible(std::vector<double>{60.0}));
}

TEST(HardwareConstraints, MissingModelImposesNoConstraint) {
  ConstraintBudgets budgets;
  budgets.power_w = 50.0;
  budgets.memory_mb = 100.0;
  HardwareConstraints hc(budgets, std::nullopt, std::nullopt);
  EXPECT_TRUE(hc.predicted_feasible(std::vector<double>{1000.0}));
  EXPECT_EQ(hc.feasibility_probability(std::vector<double>{1000.0}), 1.0);
}

TEST(HardwareConstraints, ProbabilityReflectsResidualUncertainty) {
  ConstraintBudgets budgets;
  budgets.power_w = 50.0;
  HardwareConstraints hc(budgets, identity_power_model(5.0), std::nullopt);
  // Right at the budget: 50% chance.
  EXPECT_NEAR(hc.feasibility_probability(std::vector<double>{50.0}), 0.5,
              1e-9);
  // Far below: near certain.
  EXPECT_GT(hc.feasibility_probability(std::vector<double>{30.0}), 0.99);
  // Far above: near zero.
  EXPECT_LT(hc.feasibility_probability(std::vector<double>{70.0}), 0.01);
}

TEST(HardwareConstraints, MeasuredFeasibleChecksBothMetrics) {
  ConstraintBudgets budgets;
  budgets.power_w = 50.0;
  budgets.memory_mb = 100.0;
  HardwareConstraints hc(budgets, std::nullopt, std::nullopt);
  EXPECT_TRUE(hc.measured_feasible(45.0, 90.0));
  EXPECT_FALSE(hc.measured_feasible(55.0, 90.0));
  EXPECT_FALSE(hc.measured_feasible(45.0, 110.0));
  // Missing measurements cannot violate (Tegra memory).
  EXPECT_TRUE(hc.measured_feasible(45.0, std::nullopt));
  EXPECT_TRUE(hc.measured_feasible(std::nullopt, std::nullopt));
}

TEST(ExpectedImprovementAcq, MatchesClosedForm) {
  const auto space = make_space();
  auto gp = fitted_gp();
  AcquisitionContext ctx{space};
  ctx.objective_gp = &gp;
  ctx.best_observed = 0.25;
  ExpectedImprovementAcquisition ei;
  const std::vector<double> unit{0.3, 0.3};
  const auto pred = gp.predict(linalg::Vector(unit));
  const double expected =
      stats::expected_improvement(pred.mean, pred.stddev(), 0.25);
  EXPECT_DOUBLE_EQ(ei.score(unit, space.decode(unit), ctx), expected);
}

TEST(ExpectedImprovementAcq, ZeroWithoutModel) {
  const auto space = make_space();
  AcquisitionContext ctx{space};
  ExpectedImprovementAcquisition ei;
  EXPECT_EQ(ei.score({0.5, 0.5}, space.decode({0.5, 0.5}), ctx), 0.0);
}

TEST(HwIeci, ZeroInPredictedViolationRegion) {
  const auto space = make_space();
  auto gp = fitted_gp();
  ConstraintBudgets budgets;
  budgets.power_w = 50.0;
  HardwareConstraints hc(budgets, identity_power_model(), std::nullopt);
  AcquisitionContext ctx{space};
  ctx.objective_gp = &gp;
  ctx.best_observed = 0.5;
  ctx.constraints = &hc;
  HwIeciAcquisition ieci;
  // features=80 -> predicted power 80 > 50: hard zero.
  const Configuration violating = space.decode({0.99, 0.5});
  EXPECT_EQ(ieci.score({0.99, 0.5}, violating, ctx), 0.0);
  // features=25 -> feasible: positive EI.
  const Configuration feasible = space.decode({0.05, 0.5});
  EXPECT_GT(ieci.score({0.05, 0.5}, feasible, ctx), 0.0);
}

TEST(HwIeci, EqualsEiInFeasibleRegion) {
  const auto space = make_space();
  auto gp = fitted_gp();
  ConstraintBudgets budgets;
  budgets.power_w = 100.0;  // everything feasible
  HardwareConstraints hc(budgets, identity_power_model(), std::nullopt);
  AcquisitionContext ctx{space};
  ctx.objective_gp = &gp;
  ctx.best_observed = 0.4;
  ctx.constraints = &hc;
  HwIeciAcquisition ieci;
  ExpectedImprovementAcquisition ei;
  const std::vector<double> unit{0.4, 0.6};
  const Configuration config = space.decode(unit);
  EXPECT_DOUBLE_EQ(ieci.score(unit, config, ctx), ei.score(unit, config, ctx));
}

TEST(HwCwei, WeightsEiByFeasibilityProbability) {
  const auto space = make_space();
  auto gp = fitted_gp();
  ConstraintBudgets budgets;
  budgets.power_w = 50.0;
  HardwareConstraints hc(budgets, identity_power_model(10.0), std::nullopt);
  AcquisitionContext ctx{space};
  ctx.objective_gp = &gp;
  ctx.best_observed = 0.4;
  ctx.constraints = &hc;
  HwCweiAcquisition cwei;
  ExpectedImprovementAcquisition ei;
  const std::vector<double> unit{0.5, 0.5};  // features = 50: P(feasible) ~ 0.5
  const Configuration config = space.decode(unit);
  const double ei_score = ei.score(unit, config, ctx);
  const double cwei_score = cwei.score(unit, config, ctx);
  EXPECT_GT(cwei_score, 0.0);
  EXPECT_LT(cwei_score, ei_score);
  const std::vector<double> z = space.structural_vector(config);
  EXPECT_NEAR(cwei_score, ei_score * hc.feasibility_probability(z), 1e-12);
}

TEST(HwCwei, CertainFeasibilityRecoversEi) {
  const auto space = make_space();
  auto gp = fitted_gp();
  ConstraintBudgets budgets;
  budgets.power_w = 1000.0;
  HardwareConstraints hc(budgets, identity_power_model(1.0), std::nullopt);
  AcquisitionContext ctx{space};
  ctx.objective_gp = &gp;
  ctx.best_observed = 0.4;
  ctx.constraints = &hc;
  HwCweiAcquisition cwei;
  ExpectedImprovementAcquisition ei;
  const std::vector<double> unit{0.2, 0.8};
  const Configuration config = space.decode(unit);
  EXPECT_NEAR(cwei.score(unit, config, ctx), ei.score(unit, config, ctx),
              1e-12);
}

TEST(DefaultMode, ConstraintGpsGateTheAcquisition) {
  // No a-priori models: the acquisition falls back to GPs over measured
  // power (the expensive unknown-constraints treatment).
  const auto space = make_space();
  auto objective_gp = fitted_gp();
  gp::KernelParams p;
  p.length_scales = {0.3, 0.3};
  p.signal_variance = 100.0;
  gp::GaussianProcess power_gp(gp::Matern52Kernel(p), 1e-4);
  // Measured power: low at (0.1, *), high at (0.9, *).
  linalg::Matrix x{{0.1, 0.5}, {0.9, 0.5}};
  linalg::Vector y{30.0, 90.0};
  power_gp.fit(x, y);

  AcquisitionContext ctx{space};
  ctx.objective_gp = &objective_gp;
  ctx.best_observed = 0.5;
  ctx.budgets.power_w = 50.0;
  ctx.measured_power_gp = &power_gp;

  HwIeciAcquisition ieci;
  HwCweiAcquisition cwei;
  const double ieci_low = ieci.score({0.1, 0.5}, space.decode({0.1, 0.5}), ctx);
  const double ieci_high = ieci.score({0.9, 0.5}, space.decode({0.9, 0.5}), ctx);
  EXPECT_GT(ieci_low, 0.0);
  // At the observed high-power point the GP is confident: the squared-
  // probability gate drives the score to (essentially) zero.
  EXPECT_LT(ieci_high, ieci_low * 1e-3);
  const double cwei_low = cwei.score({0.1, 0.5}, space.decode({0.1, 0.5}), ctx);
  const double cwei_high = cwei.score({0.9, 0.5}, space.decode({0.9, 0.5}), ctx);
  EXPECT_GT(cwei_low, cwei_high);
  // IECI's squared gate suppresses uncertain-feasibility regions harder
  // than CWEI's linear weighting.
  EXPECT_LE(ieci_high, cwei_high);
}

}  // namespace
}  // namespace hp::core
