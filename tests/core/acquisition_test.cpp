#include "core/acquisition.hpp"

#include <gtest/gtest.h>

#include "core/candidate_pool.hpp"
#include "core/spaces.hpp"
#include "stats/distributions.hpp"
#include "stats/halton.hpp"

namespace hp::core {
namespace {

HyperParameterSpace make_space() {
  return HyperParameterSpace({
      {"features", ParameterKind::Integer, 20, 80, true},
      {"lr", ParameterKind::LogContinuous, 0.001, 0.1, false},
  });
}

/// Power model P(z) = z0 (so budget 50 means features <= 50 feasible).
HardwareModel identity_power_model(double residual_sd = 0.0) {
  return HardwareModel(ModelForm::Linear, linalg::Vector{1.0}, 0.0,
                       residual_sd);
}

gp::GaussianProcess fitted_gp() {
  gp::KernelParams p;
  p.length_scales = {0.3, 0.3};
  gp::GaussianProcess gp(gp::Matern52Kernel(p), 1e-6);
  linalg::Matrix x{{0.2, 0.2}, {0.8, 0.8}, {0.5, 0.5}};
  linalg::Vector y{0.3, 0.6, 0.2};
  gp.fit(x, y);
  return gp;
}

TEST(HardwareConstraints, IndicatorRespectsBudgets) {
  ConstraintBudgets budgets;
  budgets.power_w = 50.0;
  HardwareConstraints hc(budgets, identity_power_model(), std::nullopt);
  EXPECT_TRUE(hc.predicted_feasible(std::vector<double>{40.0}));
  EXPECT_FALSE(hc.predicted_feasible(std::vector<double>{60.0}));
}

TEST(HardwareConstraints, MissingModelImposesNoConstraint) {
  ConstraintBudgets budgets;
  budgets.power_w = 50.0;
  budgets.memory_mb = 100.0;
  HardwareConstraints hc(budgets, std::nullopt, std::nullopt);
  EXPECT_TRUE(hc.predicted_feasible(std::vector<double>{1000.0}));
  EXPECT_EQ(hc.feasibility_probability(std::vector<double>{1000.0}), 1.0);
}

TEST(HardwareConstraints, ProbabilityReflectsResidualUncertainty) {
  ConstraintBudgets budgets;
  budgets.power_w = 50.0;
  HardwareConstraints hc(budgets, identity_power_model(5.0), std::nullopt);
  // Right at the budget: 50% chance.
  EXPECT_NEAR(hc.feasibility_probability(std::vector<double>{50.0}), 0.5,
              1e-9);
  // Far below: near certain.
  EXPECT_GT(hc.feasibility_probability(std::vector<double>{30.0}), 0.99);
  // Far above: near zero.
  EXPECT_LT(hc.feasibility_probability(std::vector<double>{70.0}), 0.01);
}

TEST(HardwareConstraints, MeasuredFeasibleChecksBothMetrics) {
  ConstraintBudgets budgets;
  budgets.power_w = 50.0;
  budgets.memory_mb = 100.0;
  HardwareConstraints hc(budgets, std::nullopt, std::nullopt);
  EXPECT_TRUE(hc.measured_feasible(45.0, 90.0));
  EXPECT_FALSE(hc.measured_feasible(55.0, 90.0));
  EXPECT_FALSE(hc.measured_feasible(45.0, 110.0));
  // Missing measurements cannot violate (Tegra memory).
  EXPECT_TRUE(hc.measured_feasible(45.0, std::nullopt));
  EXPECT_TRUE(hc.measured_feasible(std::nullopt, std::nullopt));
}

TEST(ExpectedImprovementAcq, MatchesClosedForm) {
  const auto space = make_space();
  auto gp = fitted_gp();
  AcquisitionContext ctx{space};
  ctx.objective_gp = &gp;
  ctx.best_observed = 0.25;
  ExpectedImprovementAcquisition ei;
  const std::vector<double> unit{0.3, 0.3};
  const auto pred = gp.predict(linalg::Vector(unit));
  const double expected =
      stats::expected_improvement(pred.mean, pred.stddev(), 0.25);
  EXPECT_DOUBLE_EQ(ei.score(unit, space.decode(unit), ctx), expected);
}

TEST(ExpectedImprovementAcq, ZeroWithoutModel) {
  const auto space = make_space();
  AcquisitionContext ctx{space};
  ExpectedImprovementAcquisition ei;
  EXPECT_EQ(ei.score({0.5, 0.5}, space.decode({0.5, 0.5}), ctx), 0.0);
}

TEST(HwIeci, ZeroInPredictedViolationRegion) {
  const auto space = make_space();
  auto gp = fitted_gp();
  ConstraintBudgets budgets;
  budgets.power_w = 50.0;
  HardwareConstraints hc(budgets, identity_power_model(), std::nullopt);
  AcquisitionContext ctx{space};
  ctx.objective_gp = &gp;
  ctx.best_observed = 0.5;
  ctx.constraints = &hc;
  HwIeciAcquisition ieci;
  // features=80 -> predicted power 80 > 50: hard zero.
  const Configuration violating = space.decode({0.99, 0.5});
  EXPECT_EQ(ieci.score({0.99, 0.5}, violating, ctx), 0.0);
  // features=25 -> feasible: positive EI.
  const Configuration feasible = space.decode({0.05, 0.5});
  EXPECT_GT(ieci.score({0.05, 0.5}, feasible, ctx), 0.0);
}

TEST(HwIeci, EqualsEiInFeasibleRegion) {
  const auto space = make_space();
  auto gp = fitted_gp();
  ConstraintBudgets budgets;
  budgets.power_w = 100.0;  // everything feasible
  HardwareConstraints hc(budgets, identity_power_model(), std::nullopt);
  AcquisitionContext ctx{space};
  ctx.objective_gp = &gp;
  ctx.best_observed = 0.4;
  ctx.constraints = &hc;
  HwIeciAcquisition ieci;
  ExpectedImprovementAcquisition ei;
  const std::vector<double> unit{0.4, 0.6};
  const Configuration config = space.decode(unit);
  EXPECT_DOUBLE_EQ(ieci.score(unit, config, ctx), ei.score(unit, config, ctx));
}

TEST(HwCwei, WeightsEiByFeasibilityProbability) {
  const auto space = make_space();
  auto gp = fitted_gp();
  ConstraintBudgets budgets;
  budgets.power_w = 50.0;
  HardwareConstraints hc(budgets, identity_power_model(10.0), std::nullopt);
  AcquisitionContext ctx{space};
  ctx.objective_gp = &gp;
  ctx.best_observed = 0.4;
  ctx.constraints = &hc;
  HwCweiAcquisition cwei;
  ExpectedImprovementAcquisition ei;
  const std::vector<double> unit{0.5, 0.5};  // features = 50: P(feasible) ~ 0.5
  const Configuration config = space.decode(unit);
  const double ei_score = ei.score(unit, config, ctx);
  const double cwei_score = cwei.score(unit, config, ctx);
  EXPECT_GT(cwei_score, 0.0);
  EXPECT_LT(cwei_score, ei_score);
  const std::vector<double> z = space.structural_vector(config);
  EXPECT_NEAR(cwei_score, ei_score * hc.feasibility_probability(z), 1e-12);
}

TEST(HwCwei, CertainFeasibilityRecoversEi) {
  const auto space = make_space();
  auto gp = fitted_gp();
  ConstraintBudgets budgets;
  budgets.power_w = 1000.0;
  HardwareConstraints hc(budgets, identity_power_model(1.0), std::nullopt);
  AcquisitionContext ctx{space};
  ctx.objective_gp = &gp;
  ctx.best_observed = 0.4;
  ctx.constraints = &hc;
  HwCweiAcquisition cwei;
  ExpectedImprovementAcquisition ei;
  const std::vector<double> unit{0.2, 0.8};
  const Configuration config = space.decode(unit);
  EXPECT_NEAR(cwei.score(unit, config, ctx), ei.score(unit, config, ctx),
              1e-12);
}

TEST(DefaultMode, ConstraintGpsGateTheAcquisition) {
  // No a-priori models: the acquisition falls back to GPs over measured
  // power (the expensive unknown-constraints treatment).
  const auto space = make_space();
  auto objective_gp = fitted_gp();
  gp::KernelParams p;
  p.length_scales = {0.3, 0.3};
  p.signal_variance = 100.0;
  gp::GaussianProcess power_gp(gp::Matern52Kernel(p), 1e-4);
  // Measured power: low at (0.1, *), high at (0.9, *).
  linalg::Matrix x{{0.1, 0.5}, {0.9, 0.5}};
  linalg::Vector y{30.0, 90.0};
  power_gp.fit(x, y);

  AcquisitionContext ctx{space};
  ctx.objective_gp = &objective_gp;
  ctx.best_observed = 0.5;
  ctx.budgets.power_w = 50.0;
  ctx.measured_power_gp = &power_gp;

  HwIeciAcquisition ieci;
  HwCweiAcquisition cwei;
  const double ieci_low = ieci.score({0.1, 0.5}, space.decode({0.1, 0.5}), ctx);
  const double ieci_high = ieci.score({0.9, 0.5}, space.decode({0.9, 0.5}), ctx);
  EXPECT_GT(ieci_low, 0.0);
  // At the observed high-power point the GP is confident: the squared-
  // probability gate drives the score to (essentially) zero.
  EXPECT_LT(ieci_high, ieci_low * 1e-3);
  const double cwei_low = cwei.score({0.1, 0.5}, space.decode({0.1, 0.5}), ctx);
  const double cwei_high = cwei.score({0.9, 0.5}, space.decode({0.9, 0.5}), ctx);
  EXPECT_GT(cwei_low, cwei_high);
  // IECI's squared gate suppresses uncertain-feasibility regions harder
  // than CWEI's linear weighting.
  EXPECT_LE(ieci_high, cwei_high);
}

// ---------------------------------------------------------------------------
// Blocked scoring: score_block must agree with the scalar score() entry
// point bit-for-bit, and the argmax tie-break (lowest candidate index wins)
// is pinned for both paths.
// ---------------------------------------------------------------------------

/// Space-filling candidate set + decoded configs for block-vs-scalar sweeps.
struct CandidateSet {
  std::vector<std::vector<double>> units;
  std::vector<Configuration> configs;
};

CandidateSet make_candidates(const HyperParameterSpace& space, std::size_t n) {
  CandidateSet set;
  stats::HaltonSequence halton(space.dimension(), 7);
  set.units = halton.take(n);
  set.configs.reserve(n);
  for (const auto& unit : set.units) set.configs.push_back(space.decode(unit));
  return set;
}

/// Asserts score_block == per-candidate score() bitwise over the whole set,
/// for every block size (scratch reuse must not leak state across calls).
void expect_block_matches_scalar(const AcquisitionFunction& acq,
                                 const HyperParameterSpace& space,
                                 const AcquisitionContext& ctx) {
  const CandidateSet set = make_candidates(space, 57);
  std::vector<double> want(set.units.size());
  for (std::size_t i = 0; i < set.units.size(); ++i) {
    want[i] = acq.score(set.units[i], set.configs[i], ctx);
  }
  for (std::size_t block : {std::size_t{1}, std::size_t{8}, std::size_t{57}}) {
    std::vector<double> got(set.units.size(), -1.0);
    AcquisitionScratch scratch;
    for (std::size_t begin = 0; begin < set.units.size(); begin += block) {
      const std::size_t count = std::min(block, set.units.size() - begin);
      acq.score_block(
          std::span<const std::vector<double>>(set.units).subspan(begin, count),
          std::span<const Configuration>(set.configs).subspan(begin, count),
          ctx, scratch, std::span<double>(got).subspan(begin, count));
    }
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << acq.name() << " candidate " << i
                                 << " block " << block;
    }
  }
}

TEST(ScoreBlock, EiMatchesScalarBitwise) {
  const auto space = make_space();
  auto gp = fitted_gp();
  AcquisitionContext ctx{space};
  ctx.objective_gp = &gp;
  ctx.best_observed = 0.3;
  expect_block_matches_scalar(ExpectedImprovementAcquisition{}, space, ctx);
}

TEST(ScoreBlock, HwIeciMatchesScalarBitwiseAprioriMode) {
  const auto space = make_space();
  auto gp = fitted_gp();
  ConstraintBudgets budgets;
  budgets.power_w = 50.0;
  HardwareConstraints hc(budgets, identity_power_model(), std::nullopt);
  AcquisitionContext ctx{space};
  ctx.objective_gp = &gp;
  ctx.best_observed = 0.4;
  ctx.constraints = &hc;
  expect_block_matches_scalar(HwIeciAcquisition{}, space, ctx);
  expect_block_matches_scalar(HwCweiAcquisition{}, space, ctx);
}

TEST(ScoreBlock, HwIeciMatchesScalarBitwiseDefaultMode) {
  const auto space = make_space();
  auto objective_gp = fitted_gp();
  gp::KernelParams p;
  p.length_scales = {0.3, 0.3};
  p.signal_variance = 100.0;
  gp::GaussianProcess power_gp(gp::Matern52Kernel(p), 1e-4);
  linalg::Matrix x{{0.1, 0.5}, {0.9, 0.5}};
  linalg::Vector y{30.0, 90.0};
  power_gp.fit(x, y);
  AcquisitionContext ctx{space};
  ctx.objective_gp = &objective_gp;
  ctx.best_observed = 0.5;
  ctx.budgets.power_w = 50.0;
  ctx.measured_power_gp = &power_gp;
  expect_block_matches_scalar(HwIeciAcquisition{}, space, ctx);
  expect_block_matches_scalar(HwCweiAcquisition{}, space, ctx);
}

/// Constant positive score through the scalar entry point (the base-class
/// score_block loop).
class ConstantScalarAcquisition final : public AcquisitionFunction {
 public:
  [[nodiscard]] double score(const std::vector<double>&, const Configuration&,
                             const AcquisitionContext&) const override {
    return 1.0;
  }
  [[nodiscard]] std::string name() const override { return "const-scalar"; }
};

/// Constant positive score through an overridden score_block (bypasses
/// score() entirely, exercising the blocked selection path).
class ConstantBlockAcquisition final : public AcquisitionFunction {
 public:
  [[nodiscard]] double score(const std::vector<double>&, const Configuration&,
                             const AcquisitionContext&) const override {
    return 1.0;
  }
  void score_block(std::span<const std::vector<double>> unit_xs,
                   std::span<const Configuration>, const AcquisitionContext&,
                   AcquisitionScratch&, std::span<double> out) const override {
    for (std::size_t i = 0; i < unit_xs.size(); ++i) out[i] = 1.0;
  }
  [[nodiscard]] std::string name() const override { return "const-block"; }
};

TEST(ArgmaxTieBreak, LowestIndexWinsScalarPath) {
  const auto space = make_space();
  AcquisitionContext ctx{space};
  CandidatePool pool(space);
  ConstantScalarAcquisition acq;
  stats::Rng rng(9);
  const auto best = pool.maximize(acq, ctx, rng);
  // Every candidate ties at 1.0: the first lattice point must win.
  EXPECT_EQ(best.unit, pool.lattice().front());
  EXPECT_EQ(best.score, 1.0);
}

TEST(ArgmaxTieBreak, LowestIndexWinsBlockedPath) {
  const auto space = make_space();
  AcquisitionContext ctx{space};
  for (std::size_t block : {std::size_t{1}, std::size_t{37}, std::size_t{4096}}) {
    CandidatePoolOptions opt;
    opt.score_block_size = block;
    CandidatePool pool(space, opt);
    ConstantBlockAcquisition acq;
    stats::Rng rng(9);
    const auto best = pool.maximize(acq, ctx, rng);
    EXPECT_EQ(best.unit, pool.lattice().front()) << "block " << block;
    EXPECT_EQ(best.score, 1.0);
  }
}

}  // namespace
}  // namespace hp::core
