#include "core/optimizer.hpp"

#include <gtest/gtest.h>

#include "core/bayes_opt.hpp"
#include "core/random_search.hpp"
#include "core/random_walk.hpp"
#include "fake_objective.hpp"

namespace hp::core {
namespace {

using testing::FakeObjective;
using testing::fake_space;

/// Power model in structural z (= unit a in [0,1], scaled by 100 in the
/// fake objective): P(z) = 100 * z.
HardwareConstraints make_constraints(double power_budget) {
  ConstraintBudgets budgets;
  budgets.power_w = power_budget;
  return HardwareConstraints(
      budgets,
      HardwareModel(ModelForm::Linear, linalg::Vector{100.0}, 0.0, 0.5),
      std::nullopt);
}

OptimizerOptions fixed_evals(std::size_t n, std::uint64_t seed = 1) {
  OptimizerOptions opt;
  opt.max_function_evaluations = n;
  opt.seed = seed;
  return opt;
}

TEST(RandomSearch, StopsAtMaxFunctionEvaluations) {
  auto space = fake_space();
  FakeObjective obj(space);
  RandomSearchOptimizer rand(space, obj, {}, nullptr, fixed_evals(12));
  const auto result = rand.run();
  EXPECT_EQ(result.trace.function_evaluations(), 12u);
  EXPECT_EQ(obj.evaluations(), 12u);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_LT(result.best->test_error, 0.5);
}

TEST(RandomSearch, StopsAtTimeBudgetAllowingLastSample) {
  auto space = fake_space();
  FakeObjective obj(space, /*cost_s=*/10.0);
  OptimizerOptions opt;
  opt.max_runtime_s = 95.0;
  opt.seed = 2;
  RandomSearchOptimizer rand(space, obj, {}, nullptr, opt);
  const auto result = rand.run();
  // Each sample costs 10s + 0.5s proposal overhead: the run crosses 95s
  // mid-sample and finishes it (like the paper's wall-clock runs).
  EXPECT_GE(result.trace.total_time_s(), 95.0);
  EXPECT_LT(result.trace.total_time_s(), 120.0);
}

TEST(RandomSearch, ModelFilterPreventsObjectiveCalls) {
  auto space = fake_space();
  FakeObjective obj(space);
  const auto constraints = make_constraints(60.0);
  OptimizerOptions opt;
  opt.max_samples = 50;
  opt.max_function_evaluations = 1000;
  opt.seed = 3;
  RandomSearchOptimizer rand(space, obj, constraints.budgets(), &constraints,
                             opt);
  const auto result = rand.run();
  // About 40% of the space is predicted-infeasible: those samples never
  // reach the objective.
  EXPECT_GT(result.trace.model_filtered_count(), 5u);
  EXPECT_EQ(result.trace.function_evaluations(), obj.evaluations());
  EXPECT_EQ(result.trace.size(), 50u);
  // Every filtered record is marked violating-by-prediction.
  for (const auto& r : result.trace.records()) {
    if (r.status == EvaluationStatus::ModelFiltered) {
      EXPECT_TRUE(r.violates_constraints);
      EXPECT_GT(r.config[0], 0.55);  // the predicted-infeasible region
    }
  }
}

TEST(RandomSearch, DefaultModeIgnoresModelsButDetectsViolations) {
  auto space = fake_space();
  FakeObjective obj(space);
  const auto constraints = make_constraints(60.0);
  OptimizerOptions opt = fixed_evals(30, 4);
  opt.use_hardware_models = false;  // "default" exhaustive mode
  RandomSearchOptimizer rand(space, obj, constraints.budgets(), &constraints,
                             opt);
  const auto result = rand.run();
  EXPECT_EQ(result.trace.model_filtered_count(), 0u);
  EXPECT_EQ(result.trace.function_evaluations(), 30u);
  // Violations are detected from measured power after full evaluation.
  EXPECT_GT(result.trace.measured_violation_count(), 3u);
  // The incumbent never violates.
  ASSERT_TRUE(result.best.has_value());
  EXPECT_LE(*result.best->measured_power_w, 60.0);
}

TEST(RandomSearch, EarlyTerminationShortensDivergingRuns) {
  auto space = fake_space();
  FakeObjective obj(space);
  obj.set_diverge_above(0.5);  // half the b-range diverges
  OptimizerOptions opt = fixed_evals(40, 5);
  opt.use_early_termination = true;
  RandomSearchOptimizer rand(space, obj, {}, nullptr, opt);
  const auto result = rand.run();
  EXPECT_GT(result.trace.early_terminated_count(), 5u);
  for (const auto& r : result.trace.records()) {
    if (r.status == EvaluationStatus::EarlyTerminated) {
      EXPECT_LT(r.cost_s, 2.0);  // a tenth of the full 10s
      EXPECT_TRUE(r.diverged);
    }
  }
}

TEST(RandomWalk, CentersProposalsOnIncumbent) {
  auto space = fake_space();
  FakeObjective obj(space, 1.0);
  RandomWalkOptions walk;
  walk.sigma0 = 0.05;
  RandomWalkOptimizer rw(space, obj, {}, nullptr, fixed_evals(60, 6), walk);
  const auto result = rw.run();
  ASSERT_TRUE(result.best.has_value());
  // With a tight walk the method should have drifted toward the optimum.
  EXPECT_LT(result.best->test_error, 0.05);
  // Late samples cluster near the optimum (0.3, 0.7).
  const auto& records = result.trace.records();
  double late_dist = 0.0;
  int n = 0;
  for (std::size_t i = records.size() - 10; i < records.size(); ++i) {
    late_dist += std::abs(records[i].config[0] - 0.3);
    ++n;
  }
  EXPECT_LT(late_dist / n, 0.25);
}

TEST(RandomWalk, InvalidSigmaThrows) {
  auto space = fake_space();
  FakeObjective obj(space);
  RandomWalkOptions walk;
  walk.sigma0 = 0.0;
  EXPECT_THROW(RandomWalkOptimizer(space, obj, {}, nullptr, fixed_evals(5),
                                   walk),
               std::invalid_argument);
}

TEST(BayesOpt, FindsOptimumFasterThanItsInitialDesign) {
  auto space = fake_space();
  FakeObjective obj(space, 1.0);
  BayesOptOptions bo;
  bo.initial_design = 4;
  bo.pool.lattice_points = 150;
  bo.pool.random_points = 50;
  BayesOptOptimizer opt(space, obj, {}, nullptr, fixed_evals(20, 7),
                        std::make_unique<ExpectedImprovementAcquisition>(),
                        bo);
  const auto result = opt.run();
  ASSERT_TRUE(result.best.has_value());
  EXPECT_LT(result.best->test_error, 0.02);
  EXPECT_EQ(opt.name(), "EI");
}

TEST(BayesOpt, HwIeciNeverProposesPredictedViolations) {
  auto space = fake_space();
  FakeObjective obj(space, 1.0);
  const auto constraints = make_constraints(60.0);
  BayesOptOptions bo;
  bo.initial_design = 3;
  OptimizerOptions opt;
  opt.max_function_evaluations = 15;
  opt.max_samples = 500;
  opt.seed = 8;
  BayesOptOptimizer ieci(space, obj, constraints.budgets(), &constraints, opt,
                         std::make_unique<HwIeciAcquisition>(), bo);
  const auto result = ieci.run();
  EXPECT_EQ(ieci.name(), "HW-IECI");
  // Once past the random initial design, every *trained* sample was
  // predicted feasible (model-filtered ones never reach the objective).
  for (const auto& r : result.trace.records()) {
    if (r.status == EvaluationStatus::Completed) {
      EXPECT_LE(r.config[0], 0.61) << "sample " << r.index;
    }
  }
  // And the optimum under the constraint is near a=0.3 (feasible anyway).
  ASSERT_TRUE(result.best.has_value());
  EXPECT_LT(result.best->test_error, 0.05);
}

TEST(BayesOpt, NullAcquisitionThrows) {
  auto space = fake_space();
  FakeObjective obj(space);
  EXPECT_THROW(BayesOptOptimizer(space, obj, {}, nullptr, fixed_evals(5),
                                 nullptr),
               std::invalid_argument);
}

TEST(BayesOpt, OverheadGrowsWithObservations) {
  auto space = fake_space();
  FakeObjective obj(space, 1.0);
  BayesOptOptions bo;
  BayesOptOptimizer opt(space, obj, {}, nullptr, fixed_evals(10, 9),
                        std::make_unique<ExpectedImprovementAcquisition>(),
                        bo);
  const auto result = opt.run();
  const auto& rec = result.trace.records();
  // Timestamps spacing grows: later proposals pay larger model-fit cost.
  const double first_gap = rec[1].timestamp_s - rec[0].timestamp_s;
  const double last_gap =
      rec[rec.size() - 1].timestamp_s - rec[rec.size() - 2].timestamp_s;
  EXPECT_GT(last_gap, first_gap);
}

TEST(Optimizer, MaxSamplesGuardsAgainstFilterLoops) {
  auto space = fake_space();
  FakeObjective obj(space);
  // Budget 0: everything predicted infeasible, nothing ever trains.
  const auto constraints = make_constraints(0.0);
  OptimizerOptions opt;
  opt.max_samples = 25;
  opt.seed = 10;
  RandomSearchOptimizer rand(space, obj, constraints.budgets(), &constraints,
                             opt);
  const auto result = rand.run();
  EXPECT_EQ(result.trace.size(), 25u);
  EXPECT_EQ(obj.evaluations(), 0u);
  EXPECT_FALSE(result.best.has_value());
}

TEST(Optimizer, TimestampsAreMonotone) {
  auto space = fake_space();
  FakeObjective obj(space, 3.0);
  RandomSearchOptimizer rand(space, obj, {}, nullptr, fixed_evals(15, 11));
  const auto result = rand.run();
  double prev = -1.0;
  for (const auto& r : result.trace.records()) {
    EXPECT_GT(r.timestamp_s, prev);
    prev = r.timestamp_s;
  }
}

TEST(Optimizer, IndicesAreSequential) {
  auto space = fake_space();
  FakeObjective obj(space);
  RandomSearchOptimizer rand(space, obj, {}, nullptr, fixed_evals(8, 12));
  const auto result = rand.run();
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    EXPECT_EQ(result.trace.records()[i].index, i);
  }
}

TEST(Optimizer, DeterministicForSeed) {
  auto space = fake_space();
  FakeObjective obj1(space), obj2(space);
  RandomSearchOptimizer a(space, obj1, {}, nullptr, fixed_evals(10, 77));
  RandomSearchOptimizer b(space, obj2, {}, nullptr, fixed_evals(10, 77));
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_EQ(ra.trace.size(), rb.trace.size());
  for (std::size_t i = 0; i < ra.trace.size(); ++i) {
    EXPECT_EQ(ra.trace.records()[i].config, rb.trace.records()[i].config);
  }
}

}  // namespace
}  // namespace hp::core
