#include "core/model_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hp::core {
namespace {

HardwareModel sample_model() {
  return HardwareModel(ModelForm::Linear,
                       linalg::Vector{0.321, 2.241, 0.0, 0.024}, 65.3125,
                       2.0625);
}

TEST(ModelIo, RoundTripsExactly) {
  const HardwareModel original = sample_model();
  std::stringstream buffer;
  save_hardware_model(original, buffer);
  const HardwareModel loaded = load_hardware_model(buffer);
  EXPECT_EQ(loaded.form(), original.form());
  EXPECT_EQ(loaded.intercept(), original.intercept());
  EXPECT_EQ(loaded.residual_sd(), original.residual_sd());
  ASSERT_EQ(loaded.weights().size(), original.weights().size());
  for (std::size_t i = 0; i < loaded.weights().size(); ++i) {
    EXPECT_EQ(loaded.weights()[i], original.weights()[i]);
  }
  // And the loaded model predicts identically.
  const std::vector<double> z{40.0, 3.0, 2.0, 400.0};
  EXPECT_EQ(loaded.predict(z), original.predict(z));
}

TEST(ModelIo, RoundTripsQuadraticForm) {
  const HardwareModel original(ModelForm::Quadratic,
                               linalg::Vector{1.0, 2.0, 0.5, 0.25}, -3.0, 0.0);
  std::stringstream buffer;
  save_hardware_model(original, buffer);
  const HardwareModel loaded = load_hardware_model(buffer);
  EXPECT_EQ(loaded.form(), ModelForm::Quadratic);
  const std::vector<double> z{2.0, 3.0};
  EXPECT_EQ(loaded.predict(z), original.predict(z));
}

TEST(ModelIo, RoundTripsExtremePrecision) {
  const HardwareModel original(
      ModelForm::Linear,
      linalg::Vector{1.0 / 3.0, 2.0e-17, 123456789.123456789}, 0.1 + 0.2,
      1e-300);
  std::stringstream buffer;
  save_hardware_model(original, buffer);
  const HardwareModel loaded = load_hardware_model(buffer);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(loaded.weights()[i], original.weights()[i]);
  }
  EXPECT_EQ(loaded.intercept(), original.intercept());
}

TEST(ModelIo, RoundTripsZeroAndNegativeWeights) {
  // Trained memory models routinely have zero weights (terms the dataset
  // never excites) and negative ones; both must survive unchanged.
  const HardwareModel original(ModelForm::Linear,
                               linalg::Vector{0.0, -4.75, 0.0, -0.0625}, 0.0,
                               0.0);
  std::stringstream buffer;
  save_hardware_model(original, buffer);
  const HardwareModel loaded = load_hardware_model(buffer);
  ASSERT_EQ(loaded.weights().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(loaded.weights()[i], original.weights()[i]);
  }
  EXPECT_EQ(loaded.residual_sd(), 0.0);
  const std::vector<double> z{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(loaded.predict(z), original.predict(z));
}

TEST(ModelIo, SecondSaveOverwritesFile) {
  const std::string path = ::testing::TempDir() + "/hp_model_io_overwrite.hpm";
  save_hardware_model_file(sample_model(), path);
  const HardwareModel replacement(ModelForm::Quadratic,
                                  linalg::Vector{1.5, -2.5}, 7.0, 0.5);
  save_hardware_model_file(replacement, path);
  const HardwareModel loaded = load_hardware_model_file(path);
  EXPECT_EQ(loaded.form(), ModelForm::Quadratic);
  EXPECT_EQ(loaded.intercept(), 7.0);
  ASSERT_EQ(loaded.weights().size(), 2u);
  EXPECT_EQ(loaded.weights()[1], -2.5);
  std::remove(path.c_str());
}

TEST(ModelIo, RejectsBadMagic) {
  std::stringstream buffer("not-a-model v1\n");
  EXPECT_THROW((void)load_hardware_model(buffer), std::runtime_error);
}

TEST(ModelIo, RejectsUnsupportedVersion) {
  std::stringstream buffer("hyperpower-model v9\nform linear\n");
  EXPECT_THROW((void)load_hardware_model(buffer), std::runtime_error);
}

TEST(ModelIo, RejectsUnknownForm) {
  std::stringstream buffer(
      "hyperpower-model v1\nform cubic\nintercept 0\nresidual_sd 0\n"
      "weights 1 1.0\n");
  EXPECT_THROW((void)load_hardware_model(buffer), std::runtime_error);
}

TEST(ModelIo, RejectsTruncatedWeights) {
  std::stringstream buffer(
      "hyperpower-model v1\nform linear\nintercept 0\nresidual_sd 0\n"
      "weights 3 1.0 2.0\n");
  EXPECT_THROW((void)load_hardware_model(buffer), std::runtime_error);
}

TEST(ModelIo, RejectsNegativeResidualSd) {
  std::stringstream buffer(
      "hyperpower-model v1\nform linear\nintercept 0\nresidual_sd -1\n"
      "weights 1 1.0\n");
  EXPECT_THROW((void)load_hardware_model(buffer), std::runtime_error);
}

TEST(ModelIo, RejectsEmptyStream) {
  std::stringstream buffer;
  EXPECT_THROW((void)load_hardware_model(buffer), std::runtime_error);
}

TEST(ModelIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/hp_model_io_test.hpm";
  save_hardware_model_file(sample_model(), path);
  const HardwareModel loaded = load_hardware_model_file(path);
  EXPECT_EQ(loaded.intercept(), sample_model().intercept());
  std::remove(path.c_str());
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW((void)load_hardware_model_file("/nonexistent/dir/model.hpm"),
               std::runtime_error);
  EXPECT_THROW(
      save_hardware_model_file(sample_model(), "/nonexistent/dir/model.hpm"),
      std::runtime_error);
}

}  // namespace
}  // namespace hp::core
