// Behavioural tests for the annotated synchronization wrappers in
// core/thread_annotations.hpp: hp::Mutex / hp::MutexLock / hp::CondVar
// must be drop-in equivalents of the std primitives they wrap (the
// annotations themselves are compile-time only; their enforcement is
// exercised by tests/compile_fail/ under clang). These tests are written
// to be clean under -Wthread-safety too — e.g. try_lock results are
// always branched on — since the test tree builds with the analysis on in
// the thread-safety CI job.

#include "core/thread_annotations.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace {

TEST(MutexTest, LockUnlockRoundTrip) {
  hp::Mutex mutex;
  mutex.lock();
  mutex.unlock();
  // Reacquirable after release.
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  hp::Mutex mutex;
  mutex.lock();
  bool acquired = true;
  std::thread prober([&] {
    if (mutex.try_lock()) {
      mutex.unlock();
    } else {
      acquired = false;
    }
  });
  prober.join();
  mutex.unlock();
  EXPECT_FALSE(acquired);
}

TEST(MutexLockTest, ReleasesOnScopeExit) {
  hp::Mutex mutex;
  {
    hp::MutexLock lock(mutex);
  }
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(MutexLockTest, ReleasesDuringUnwind) {
  hp::Mutex mutex;
  try {
    hp::MutexLock lock(mutex);
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(MutexLockTest, MutualExclusionUnderContention) {
  hp::Mutex mutex;
  int counter = 0;  // guarded by convention here; the point is the count
  constexpr int kThreads = 4;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        hp::MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(CondVarTest, WaitWakesOnNotify) {
  hp::Mutex mutex;
  hp::CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread consumer([&] {
    hp::MutexLock lock(mutex);
    while (!ready) cv.wait(mutex);
    observed = 42;
  });
  {
    hp::MutexLock lock(mutex);
    ready = true;
  }
  cv.notify_one();
  consumer.join();
  EXPECT_EQ(observed, 42);
}

TEST(CondVarTest, WaitForTimesOutWithoutNotification) {
  hp::Mutex mutex;
  hp::CondVar cv;
  hp::MutexLock lock(mutex);
  const std::cv_status status =
      cv.wait_for(mutex, std::chrono::milliseconds(1));
  EXPECT_EQ(status, std::cv_status::timeout);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  hp::Mutex mutex;
  hp::CondVar cv;
  bool go = false;
  int woken = 0;
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      hp::MutexLock lock(mutex);
      while (!go) cv.wait(mutex);
      ++woken;
    });
  }
  {
    hp::MutexLock lock(mutex);
    go = true;
  }
  cv.notify_all();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(woken, kWaiters);
}

TEST(ThreadAnnotationsTest, MacrosAreTransparentOffClang) {
  // The annotation macros must never change observable semantics; this
  // pins the wrappers as plain wrappers (native() is the std::mutex).
  hp::Mutex mutex;
  mutex.lock();
  EXPECT_FALSE(mutex.native().try_lock());
  mutex.unlock();
  EXPECT_TRUE(mutex.native().try_lock());
  mutex.native().unlock();
}

}  // namespace
