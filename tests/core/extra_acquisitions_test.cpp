#include "core/extra_acquisitions.hpp"

#include <gtest/gtest.h>

#include "core/spaces.hpp"
#include "stats/distributions.hpp"

namespace hp::core {
namespace {

HyperParameterSpace make_space() {
  return HyperParameterSpace({
      {"features", ParameterKind::Integer, 20, 80, true},
      {"lr", ParameterKind::LogContinuous, 0.001, 0.1, false},
  });
}

gp::GaussianProcess fitted_gp() {
  gp::KernelParams p;
  p.length_scales = {0.3, 0.3};
  gp::GaussianProcess gp(gp::Matern52Kernel(p), 1e-6);
  linalg::Matrix x{{0.2, 0.2}, {0.8, 0.8}, {0.5, 0.5}};
  linalg::Vector y{0.3, 0.6, 0.2};
  gp.fit(x, y);
  return gp;
}

HardwareConstraints tight_constraints(double budget) {
  ConstraintBudgets budgets;
  budgets.power_w = budget;
  return HardwareConstraints(
      budgets, HardwareModel(ModelForm::Linear, linalg::Vector{1.0}, 0.0, 2.0),
      std::nullopt);
}

TEST(HwPi, ValidatesXi) {
  EXPECT_THROW(HwPiAcquisition(-0.1), std::invalid_argument);
  EXPECT_NO_THROW(HwPiAcquisition(0.0));
}

TEST(HwPi, MatchesClosedFormProbability) {
  const auto space = make_space();
  auto gp = fitted_gp();
  AcquisitionContext ctx{space};
  ctx.objective_gp = &gp;
  ctx.best_observed = 0.35;
  HwPiAcquisition pi(0.01);
  const std::vector<double> unit{0.4, 0.4};
  const auto pred = gp.predict(linalg::Vector(unit));
  const double expected =
      stats::probability_below(pred.mean, pred.stddev(), 0.35 - 0.01);
  EXPECT_DOUBLE_EQ(pi.score(unit, space.decode(unit), ctx), expected);
}

TEST(HwPi, ZeroWithoutGp) {
  const auto space = make_space();
  AcquisitionContext ctx{space};
  HwPiAcquisition pi;
  EXPECT_EQ(pi.score({0.5, 0.5}, space.decode({0.5, 0.5}), ctx), 0.0);
}

TEST(HwPi, GatedByAPrioriConstraints) {
  const auto space = make_space();
  auto gp = fitted_gp();
  const auto constraints = tight_constraints(50.0);
  AcquisitionContext ctx{space};
  ctx.objective_gp = &gp;
  ctx.best_observed = 0.5;
  ctx.constraints = &constraints;
  HwPiAcquisition pi;
  EXPECT_EQ(pi.score({0.99, 0.5}, space.decode({0.99, 0.5}), ctx), 0.0);
  EXPECT_GT(pi.score({0.05, 0.5}, space.decode({0.05, 0.5}), ctx), 0.0);
}

TEST(HwLcb, ValidatesKappa) {
  EXPECT_THROW(HwLcbAcquisition(-1.0), std::invalid_argument);
}

TEST(HwLcb, PrefersUncertainOverKnownBad) {
  const auto space = make_space();
  auto gp = fitted_gp();
  AcquisitionContext ctx{space};
  ctx.objective_gp = &gp;
  ctx.best_observed = 0.25;
  HwLcbAcquisition lcb(2.0);
  // Near the known 0.6 observation: bound is poor. Far from data:
  // uncertainty makes the optimistic bound attractive.
  const double near_bad = lcb.score({0.8, 0.8}, space.decode({0.8, 0.8}), ctx);
  const double far = lcb.score({0.05, 0.95}, space.decode({0.05, 0.95}), ctx);
  EXPECT_GT(far, near_bad);
}

TEST(HwLcb, KappaZeroIsPureExploitation) {
  const auto space = make_space();
  auto gp = fitted_gp();
  AcquisitionContext ctx{space};
  ctx.objective_gp = &gp;
  ctx.best_observed = 0.25;
  HwLcbAcquisition greedy(0.0);
  // At the best observed point (mean 0.2 < 0.25) score is positive.
  EXPECT_GT(greedy.score({0.5, 0.5}, space.decode({0.5, 0.5}), ctx), 0.0);
  // At the worst observed point (mean 0.6) the bound loses to 0.25 -> 0.
  EXPECT_EQ(greedy.score({0.8, 0.8}, space.decode({0.8, 0.8}), ctx), 0.0);
}

TEST(HwLcb, GatedByAPrioriConstraints) {
  const auto space = make_space();
  auto gp = fitted_gp();
  const auto constraints = tight_constraints(50.0);
  AcquisitionContext ctx{space};
  ctx.objective_gp = &gp;
  ctx.best_observed = 0.9;
  ctx.constraints = &constraints;
  HwLcbAcquisition lcb;
  EXPECT_EQ(lcb.score({0.99, 0.2}, space.decode({0.99, 0.2}), ctx), 0.0);
  EXPECT_GT(lcb.score({0.05, 0.2}, space.decode({0.05, 0.2}), ctx), 0.0);
}

TEST(ExtraAcquisitions, NamesDistinct) {
  EXPECT_EQ(HwPiAcquisition().name(), "HW-PI");
  EXPECT_EQ(HwLcbAcquisition().name(), "HW-LCB");
}

}  // namespace
}  // namespace hp::core
