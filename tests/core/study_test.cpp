// Study-layer tests: the ask/tell state machine in isolation, driven by
// hand instead of by EvaluationEngine. The engine-level behavior (golden
// traces, resume, fleet) is pinned elsewhere; this file covers the
// contract of the interface itself — batch shortening on exhaustion,
// lifecycle ordering, tail dropping, and the config re-stamp.

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/clock.hpp"
#include "core/grid_search.hpp"
#include "core/random_search.hpp"
#include "core/study.hpp"
#include "core/trace_io.hpp"
#include "fake_objective.hpp"

namespace hp::core {
namespace {

using testing::fake_space;

OptimizerOptions batched_options(std::size_t batch_size) {
  OptimizerOptions options;
  options.seed = 7;
  options.batch_size = batch_size;
  options.use_hardware_models = false;
  options.use_early_termination = false;
  return options;
}

EvaluationRecord completed_record(const Trial& trial, double test_error) {
  EvaluationRecord r;
  r.config = trial.config;
  r.index = trial.sample_index;
  r.status = EvaluationStatus::Completed;
  r.test_error = test_error;
  r.measured_power_w = 10.0;
  r.measured_memory_mb = 10.0;
  r.cost_s = 5.0;
  return r;
}

/// Begins + tells every trial of a round with a synthetic completed
/// record; returns how many trials were admitted before a stopping rule
/// cut the tail.
std::size_t tell_round(Study& study, const std::vector<Trial>& trials) {
  std::size_t admitted = 0;
  for (const Trial& trial : trials) {
    if (!study.begin_trial(trial.sample_index)) break;
    if (trial.requires_evaluation) {
      study.tell({trial.sample_index, completed_record(trial, 0.5),
                  /*cost_on_clock=*/false});
    } else {
      study.tell({trial.sample_index, trial.resolved,
                  /*cost_on_clock=*/false});
    }
    ++admitted;
  }
  return admitted;
}

// The satellite regression: a finite proposer that runs out mid-batch
// shortens the round to the points actually produced — and once
// exhausted, ask() returns an empty batch. Padding (wrapped-around or
// repeated proposals) would silently corrupt grid-search semantics.
TEST(Study, ExhaustedProposerShortensThenEmptiesTheBatch) {
  const HyperParameterSpace space = fake_space();
  GridSearchOptions grid;
  grid.levels_per_dimension = 3;  // 3^2 = 9 points, not a multiple of 4
  GridSearchProposer proposer(space, grid);
  VirtualClock clock;
  const OptimizerOptions options = batched_options(4);
  Study study(space, ConstraintBudgets{}, nullptr, options, proposer, clock);
  study.begin();

  std::vector<std::size_t> round_sizes;
  std::vector<Configuration> seen;
  while (!study.finished()) {
    const std::vector<Trial> trials = study.ask(options.batch_size);
    if (trials.empty()) break;
    round_sizes.push_back(trials.size());
    for (const Trial& trial : trials) seen.push_back(trial.config);
    ASSERT_EQ(tell_round(study, trials), trials.size());
  }

  // 9 grid points asked as 4 + 4 + 1: the last round is SHORT, and the
  // study reports finished instead of handing out a padded tenth trial.
  EXPECT_EQ(round_sizes, (std::vector<std::size_t>{4, 4, 1}));
  ASSERT_EQ(seen.size(), 9u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    for (std::size_t j = i + 1; j < seen.size(); ++j) {
      EXPECT_NE(seen[i], seen[j]) << "grid point repeated: " << i << "," << j;
    }
  }
  EXPECT_TRUE(study.finished());
  EXPECT_TRUE(study.ask(options.batch_size).empty());

  const RunResult result = study.finish();
  EXPECT_EQ(result.trace.size(), 9u);
  EXPECT_FALSE(result.aborted);
}

TEST(Study, AskOnFullyExhaustedProposerReturnsEmptyNotPadded) {
  const HyperParameterSpace space = fake_space();
  GridSearchOptions grid;
  grid.levels_per_dimension = 2;  // 4 points: one exact round of 4
  GridSearchProposer proposer(space, grid);
  VirtualClock clock;
  const OptimizerOptions options = batched_options(4);
  Study study(space, ConstraintBudgets{}, nullptr, options, proposer, clock);
  study.begin();

  const std::vector<Trial> round = study.ask(4);
  ASSERT_EQ(round.size(), 4u);
  ASSERT_EQ(tell_round(study, round), 4u);
  // The grid is spent exactly at the round boundary: no short round, just
  // an immediately-finished study and an empty ask.
  EXPECT_TRUE(study.finished());
  EXPECT_TRUE(study.ask(4).empty());
  EXPECT_EQ(study.finish().trace.size(), 4u);
}

TEST(Study, AskWhileRoundPendingThrows) {
  const HyperParameterSpace space = fake_space();
  RandomSearchProposer proposer(space);
  VirtualClock clock;
  const OptimizerOptions options = batched_options(2);
  Study study(space, ConstraintBudgets{}, nullptr, options, proposer, clock);
  study.begin();

  const std::vector<Trial> trials = study.ask(2);
  ASSERT_EQ(trials.size(), 2u);
  EXPECT_THROW((void)study.ask(2), std::logic_error);
  ASSERT_EQ(tell_round(study, trials), 2u);
  EXPECT_EQ(study.ask(2).size(), 2u);  // legal again once the round is told
}

TEST(Study, LifecycleOrderingIsEnforced) {
  const HyperParameterSpace space = fake_space();
  RandomSearchProposer proposer(space);
  VirtualClock clock;
  const OptimizerOptions options = batched_options(3);
  Study study(space, ConstraintBudgets{}, nullptr, options, proposer, clock);
  study.begin();

  const std::vector<Trial> trials = study.ask(3);
  ASSERT_EQ(trials.size(), 3u);
  // Out of ask order: sample 1 before sample 0.
  EXPECT_THROW((void)study.begin_trial(trials[1].sample_index),
               std::logic_error);
  // Telling an un-begun trial is a driver bug, not a state transition.
  EXPECT_THROW(
      study.tell({trials[0].sample_index, completed_record(trials[0], 0.5),
                  /*cost_on_clock=*/false}),
      std::logic_error);
  ASSERT_TRUE(study.begin_trial(trials[0].sample_index));
  // Telling a different sample than the begun one is equally out of order.
  EXPECT_THROW(
      study.tell({trials[2].sample_index, completed_record(trials[2], 0.5),
                  /*cost_on_clock=*/false}),
      std::logic_error);
  study.tell({trials[0].sample_index, completed_record(trials[0], 0.5),
              /*cost_on_clock=*/false});
  ASSERT_TRUE(study.begin_trial(trials[1].sample_index));
  study.tell({trials[1].sample_index, completed_record(trials[1], 0.5),
              /*cost_on_clock=*/false});
  ASSERT_TRUE(study.begin_trial(trials[2].sample_index));
  study.tell({trials[2].sample_index, completed_record(trials[2], 0.5),
              /*cost_on_clock=*/false});
  EXPECT_EQ(study.finish().trace.size(), 3u);
}

TEST(Study, StoppingRuleDropsTheRoundTail) {
  const HyperParameterSpace space = fake_space();
  RandomSearchProposer proposer(space);
  VirtualClock clock;
  OptimizerOptions options = batched_options(4);
  options.max_function_evaluations = 2;
  Study study(space, ConstraintBudgets{}, nullptr, options, proposer, clock);
  study.begin();

  const std::vector<Trial> trials = study.ask(4);
  ASSERT_EQ(trials.size(), 4u);
  // The budget admits two trials; begin_trial refuses the third and drops
  // the remaining tail in one transition.
  EXPECT_EQ(tell_round(study, trials), 2u);

  const StudySnapshot snap = study.snapshot();
  EXPECT_EQ(snap.asked, 4u);
  EXPECT_EQ(snap.reported, 2u);
  EXPECT_EQ(snap.dropped, 2u);
  EXPECT_EQ(snap.pending, 0u);
  EXPECT_EQ(snap.function_evaluations, 2u);
  EXPECT_TRUE(snap.finished);
  EXPECT_FALSE(snap.aborted);
  EXPECT_TRUE(study.ask(4).empty());
  EXPECT_EQ(study.finish().trace.size(), 2u);
}

TEST(Study, TellRestampsConfigFromTheProposalCopy) {
  const HyperParameterSpace space = fake_space();
  RandomSearchProposer proposer(space);
  VirtualClock clock;
  const OptimizerOptions options = batched_options(2);
  Study study(space, ConstraintBudgets{}, nullptr, options, proposer, clock);
  study.begin();

  const std::vector<Trial> trials = study.ask(2);
  ASSERT_EQ(trials.size(), 2u);
  for (const Trial& trial : trials) {
    ASSERT_TRUE(study.begin_trial(trial.sample_index));
    EvaluationRecord record = completed_record(trial, 0.25);
    // Mangle the config the executor hands back (a lossy wire, a worker
    // bug): the study must book its own proposal copy regardless.
    record.config = {-1.0, -1.0};
    study.tell({trial.sample_index, std::move(record),
                /*cost_on_clock=*/false});
  }
  const RunResult result = study.finish();
  ASSERT_EQ(result.trace.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(result.trace.records()[i].config, trials[i].config);
  }
}

TEST(Study, SnapshotTracksCountersAndClockAcrossARound) {
  const HyperParameterSpace space = fake_space();
  RandomSearchProposer proposer(space);  // proposal_overhead_s() == 0.5
  VirtualClock clock;
  const OptimizerOptions options = batched_options(2);
  Study study(space, ConstraintBudgets{}, nullptr, options, proposer, clock);
  study.begin();

  EXPECT_EQ(study.snapshot().asked, 0u);
  const std::vector<Trial> trials = study.ask(2);
  ASSERT_EQ(trials.size(), 2u);
  StudySnapshot snap = study.snapshot();
  EXPECT_EQ(snap.asked, 2u);
  EXPECT_EQ(snap.pending, 2u);
  EXPECT_EQ(snap.reported, 0u);

  ASSERT_TRUE(study.begin_trial(trials[0].sample_index));
  EvaluationRecord failed = completed_record(trials[0], 1.0);
  failed.status = EvaluationStatus::Failed;
  failed.failure_kind = FailureKind::Transient;
  study.tell({trials[0].sample_index, std::move(failed),
              /*cost_on_clock=*/false});
  ASSERT_TRUE(study.begin_trial(trials[1].sample_index));
  study.tell({trials[1].sample_index, completed_record(trials[1], 0.5),
              /*cost_on_clock=*/false});

  snap = study.snapshot();
  EXPECT_EQ(snap.pending, 0u);
  EXPECT_EQ(snap.reported, 1u);
  EXPECT_EQ(snap.failed, 1u);
  EXPECT_EQ(snap.samples, 2u);
  ASSERT_TRUE(snap.best.has_value());
  EXPECT_EQ(snap.best->test_error, 0.5);
  // Two proposal overheads (2 x 0.5 s) + two evaluation costs (2 x 5 s).
  EXPECT_DOUBLE_EQ(snap.clock_s, 11.0);
  (void)study.finish();
}

TEST(Study, FinishFinalizesTheJournalWithStudyState) {
  const HyperParameterSpace space = fake_space();
  RandomSearchProposer proposer(space);
  VirtualClock clock;
  OptimizerOptions options = batched_options(2);
  options.journal_path =
      std::string(::testing::TempDir()) + "/study_finalize.hpj";
  Study study(space, ConstraintBudgets{}, nullptr, options, proposer, clock);
  study.begin();
  const std::vector<Trial> trials = study.ask(2);
  ASSERT_EQ(tell_round(study, trials), 2u);
  (void)study.finish();

  const JournalLoadResult loaded = EvalJournal::load(options.journal_path);
  EXPECT_TRUE(loaded.complete());
  EXPECT_EQ(loaded.study_state, "completed");
  EXPECT_EQ(loaded.records.size(), 2u);
  std::remove(options.journal_path.c_str());
}

TEST(Study, JobsFromTrialsSkipsPreResolvedTrials) {
  std::vector<Trial> trials(3);
  trials[0].sample_index = 10;
  trials[0].config = {0.1, 0.2};
  trials[1].sample_index = 11;
  trials[1].requires_evaluation = false;  // model-filtered
  trials[2].sample_index = 12;
  trials[2].config = {0.3, 0.4};
  const std::vector<RoundJob> jobs = jobs_from_trials(trials);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].sample_index, 10u);
  EXPECT_EQ(jobs[0].config, trials[0].config);
  EXPECT_EQ(jobs[1].sample_index, 12u);
  EXPECT_EQ(jobs[1].config, trials[2].config);
}

}  // namespace
}  // namespace hp::core
