// Golden-trace regression suite (ISSUE 5). The CSV traces under
// tests/data/golden/ were captured from the pre-refactor Optimizer loops
// (run()/run_batched()/resume() as separate code paths); the refactored
// Proposer / EvaluationEngine / RunRecorder pipeline must reproduce every
// one of them byte-for-byte:
//   - every method (Rand, Rand-Walk, HW-IECI, HW-CWEI, Grid)
//   - batch_size 1 and 4, num_threads 1 and 4 (thread-count invariance
//     means both thread counts compare against the SAME golden file)
//   - crash/resume via journal replay (truncate the journal mid-run,
//     resume on a fresh stack, compare the final trace to the golden)
// The scenario is deliberately rich: a-priori constraint filtering, early
// termination of diverging candidates, and deterministic injected faults
// (retries + Failed records) all appear in the traces.
//
// Regenerating (ONLY valid before a behavior-changing commit, by
// definition): HYPERPOWER_REGEN_GOLDEN=1 ./test_golden_trace

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/bayes_opt.hpp"
#include "core/fault_injection.hpp"
#include "core/grid_search.hpp"
#include "core/optimizer.hpp"
#include "core/random_search.hpp"
#include "core/random_walk.hpp"
#include "core/trace_io.hpp"
#include "fake_objective.hpp"
#include "obs/trace.hpp"

namespace hp::core {
namespace {

using testing::FakeObjective;
using testing::fake_space;

bool regen_mode() {
  const char* env = std::getenv("HYPERPOWER_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0';
}

std::string golden_dir() {
  return std::string(HYPERPOWER_TEST_DATA_DIR) + "/golden";
}

std::string golden_path(const std::string& key, std::size_t batch) {
  return golden_dir() + "/" + key + "_b" + std::to_string(batch) + ".csv";
}

std::string trace_csv(const RunTrace& trace) {
  std::ostringstream os;
  trace.write_csv(os);
  return os.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) ADD_FAILURE() << "cannot open golden file " << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& contents) {
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  ASSERT_TRUE(out.good()) << "cannot write golden file " << path;
}

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

bool is_bayesian_key(const std::string& key) {
  return key.rfind("hw_ieci", 0) == 0 || key.rfind("hw_cwei", 0) == 0;
}

/// "_long" keys are the BO-heavy scenarios (ISSUE 6): enough completed
/// observations (>= 60) that the incremental GP refit and blocked
/// acquisition paths run far past the cache-warmup regime.
bool is_long_key(const std::string& key) {
  return key.size() >= 5 && key.compare(key.size() - 5, 5, "_long") == 0;
}

/// Power model in structural z (= unit a, scaled by 100 in the fake
/// objective): P(z) = 100 * z, 60 W budget => a <= 0.6 predicted feasible.
HardwareConstraints golden_constraints() {
  ConstraintBudgets budgets;
  budgets.power_w = 60.0;
  return HardwareConstraints(
      budgets,
      HardwareModel(ModelForm::Linear, linalg::Vector{100.0}, 0.0, 0.5),
      std::nullopt);
}

OptimizerOptions golden_options(const std::string& key, std::size_t batch,
                                std::size_t threads) {
  OptimizerOptions opt;
  opt.seed = 21;
  opt.batch_size = batch;
  opt.num_threads = threads;
  opt.retry.max_attempts = 3;
  opt.retry.backoff_initial_s = 5.0;
  opt.retry.backoff_jitter = 0.1;
  if (key == "grid") {
    // 3 levels x 2 dims = 9 points; stop exactly at the full grid so the
    // golden never depends on the wrap-vs-stop exhaustion policy.
    opt.max_samples = 9;
  } else if (is_bayesian_key(key)) {
    if (is_long_key(key)) {
      opt.max_function_evaluations = 70;
      opt.max_samples = 350;
    } else {
      opt.max_function_evaluations = 8;
      opt.max_samples = 48;
    }
  } else {
    opt.max_function_evaluations = 12;
    opt.max_samples = 60;
  }
  return opt;
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& key,
                                          const HyperParameterSpace& space,
                                          Objective& objective,
                                          const HardwareConstraints& constraints,
                                          OptimizerOptions opt) {
  const ConstraintBudgets budgets = constraints.budgets();
  if (key == "rand") {
    return std::make_unique<RandomSearchOptimizer>(space, objective, budgets,
                                                   &constraints, opt);
  }
  if (key == "rand_walk") {
    return std::make_unique<RandomWalkOptimizer>(space, objective, budgets,
                                                 &constraints, opt);
  }
  if (key == "grid") {
    GridSearchOptions grid;
    grid.levels_per_dimension = 3;
    return std::make_unique<GridSearchOptimizer>(space, objective, budgets,
                                                 &constraints, opt, grid);
  }
  BayesOptOptions bo;
  bo.initial_design = 3;
  bo.pool.lattice_points = 120;
  bo.pool.random_points = 60;
  // The long scenario stretches the posterior-only stretch between ML
  // kernel fits so most of its ~70 refits take the incremental path.
  if (is_long_key(key)) bo.kernel_refit_interval = 12;
  std::unique_ptr<AcquisitionFunction> acquisition;
  if (key.rfind("hw_ieci", 0) == 0) {
    acquisition = std::make_unique<HwIeciAcquisition>();
  } else if (key.rfind("hw_cwei", 0) == 0) {
    acquisition = std::make_unique<HwCweiAcquisition>();
  } else {
    ADD_FAILURE() << "unknown method key " << key;
  }
  return std::make_unique<BayesOptOptimizer>(space, objective, budgets,
                                             &constraints, opt,
                                             std::move(acquisition), bo);
}

FaultSpec golden_faults() {
  FaultSpec faults;
  faults.failure_rate = 0.15;
  faults.seed = 909;
  return faults;
}

/// One full fresh-stack run; returns the result (objective torn down after).
Optimizer::Result run_once(const std::string& key, std::size_t batch,
                           std::size_t threads,
                           const std::string& journal_path = "") {
  const HyperParameterSpace space = fake_space();
  const HardwareConstraints constraints = golden_constraints();
  FakeObjective inner(space);
  inner.set_diverge_above(0.55);
  FaultInjectingObjective faulty(inner, golden_faults());
  OptimizerOptions opt = golden_options(key, batch, threads);
  opt.journal_path = journal_path;
  auto optimizer = make_optimizer(key, space, faulty, constraints, opt);
  return optimizer->run();
}

void check_or_regen(const std::string& key, std::size_t batch) {
  const std::string path = golden_path(key, batch);
  if (regen_mode()) {
    const Optimizer::Result result = run_once(key, batch, /*threads=*/1);
    write_file(path, trace_csv(result.trace));
    SUCCEED() << "regenerated " << path;
    return;
  }
  const std::string golden = read_file(path);
  ASSERT_FALSE(golden.empty()) << path;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE(key + " batch=" + std::to_string(batch) +
                 " threads=" + std::to_string(threads));
    const Optimizer::Result result = run_once(key, batch, threads);
    EXPECT_EQ(trace_csv(result.trace), golden);
  }
}

/// Journal the run, "crash" it by truncating to @p keep records, resume on
/// a completely fresh stack, and require the final trace to still match
/// the golden byte-for-byte.
void check_resume(const std::string& key, std::size_t batch,
                  std::size_t threads, std::size_t keep) {
  if (regen_mode()) GTEST_SKIP() << "regen mode: goldens only";
  SCOPED_TRACE(key + " batch=" + std::to_string(batch) +
               " threads=" + std::to_string(threads) +
               " keep=" + std::to_string(keep));
  const std::string golden = read_file(golden_path(key, batch));
  const std::string full_journal =
      temp_path("golden_" + key + "_b" + std::to_string(batch) + "_full.hpj");
  const Optimizer::Result full = run_once(key, batch, threads, full_journal);
  ASSERT_EQ(trace_csv(full.trace), golden);
  ASSERT_GT(full.trace.size(), keep);

  JournalLoadResult crashed = EvalJournal::load(full_journal);
  ASSERT_GE(crashed.records.size(), keep);
  crashed.records.resize(keep);

  const std::string resumed_journal = temp_path(
      "golden_" + key + "_b" + std::to_string(batch) + "_resumed.hpj");
  const HyperParameterSpace space = fake_space();
  const HardwareConstraints constraints = golden_constraints();
  FakeObjective inner(space);
  inner.set_diverge_above(0.55);
  FaultInjectingObjective faulty(inner, golden_faults());
  OptimizerOptions opt = golden_options(key, batch, threads);
  opt.journal_path = resumed_journal;
  auto optimizer = make_optimizer(key, space, faulty, constraints, opt);
  const Optimizer::Result resumed = optimizer->resume(crashed.records);
  EXPECT_EQ(trace_csv(resumed.trace), golden);

  std::remove(full_journal.c_str());
  std::remove(resumed_journal.c_str());
}

TEST(GoldenTrace, Rand_Batch1) { check_or_regen("rand", 1); }
TEST(GoldenTrace, Rand_Batch4) { check_or_regen("rand", 4); }
TEST(GoldenTrace, RandWalk_Batch1) { check_or_regen("rand_walk", 1); }
TEST(GoldenTrace, RandWalk_Batch4) { check_or_regen("rand_walk", 4); }
TEST(GoldenTrace, HwIeci_Batch1) { check_or_regen("hw_ieci", 1); }
TEST(GoldenTrace, HwIeci_Batch4) { check_or_regen("hw_ieci", 4); }
TEST(GoldenTrace, HwCwei_Batch1) { check_or_regen("hw_cwei", 1); }
TEST(GoldenTrace, HwCwei_Batch4) { check_or_regen("hw_cwei", 4); }
TEST(GoldenTrace, Grid_Batch1) { check_or_regen("grid", 1); }
TEST(GoldenTrace, Grid_Batch4) { check_or_regen("grid", 4); }

// BO-heavy goldens (ISSUE 6): ~70 completed observations, so the
// incremental-Cholesky/cached-kernel refit path and the blocked
// acquisition scoring are exercised well past the cache-warmup regime.
TEST(GoldenTrace, HwIeciLong_Batch1) { check_or_regen("hw_ieci_long", 1); }
TEST(GoldenTrace, HwIeciLong_Batch4) { check_or_regen("hw_ieci_long", 4); }

TEST(GoldenTrace, Resume_Rand_Sequential) { check_resume("rand", 1, 1, 5); }
TEST(GoldenTrace, Resume_Rand_BatchedParallel) {
  check_resume("rand", 4, 4, 6);  // 6 is mid-round: partial round dropped
}
TEST(GoldenTrace, Resume_RandWalk_Sequential) {
  check_resume("rand_walk", 1, 1, 5);
}
TEST(GoldenTrace, Resume_RandWalk_BatchedParallel) {
  check_resume("rand_walk", 4, 4, 6);
}
TEST(GoldenTrace, Resume_HwIeci_Sequential) { check_resume("hw_ieci", 1, 1, 4); }
TEST(GoldenTrace, Resume_HwIeci_BatchedParallel) {
  check_resume("hw_ieci", 4, 4, 6);
}
TEST(GoldenTrace, Resume_HwCwei_Sequential) { check_resume("hw_cwei", 1, 1, 4); }
TEST(GoldenTrace, Resume_HwCwei_BatchedParallel) {
  check_resume("hw_cwei", 4, 4, 6);
}
TEST(GoldenTrace, Resume_Grid_Sequential) { check_resume("grid", 1, 1, 5); }
TEST(GoldenTrace, Resume_Grid_BatchedParallel) {
  check_resume("grid", 4, 4, 6);
}
// keep=30 resumes mid-run with a warm (~25-observation) GP, so replay
// followed by live incremental refits must still match the golden.
TEST(GoldenTrace, Resume_HwIeciLong_Sequential) {
  check_resume("hw_ieci_long", 1, 1, 30);
}
TEST(GoldenTrace, Resume_HwIeciLong_BatchedParallel) {
  check_resume("hw_ieci_long", 4, 4, 30);
}

// Tracing is pure read-side (ISSUE 7): with the span tracer recording and
// the flight recorder armed, the goldens must still match byte-for-byte —
// at batch 1 and 4, threads 1 and 4, across every method family.
TEST(GoldenTrace, TracingOnIsByteIdentical) {
  if (regen_mode()) GTEST_SKIP() << "regen mode: goldens only";
  obs::TraceConfig config;
  config.ring_kb = 512;
  config.flight_recorder = true;
  obs::tracer().start(config);
  for (const std::string key : {"rand", "grid", "hw_ieci"}) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{4}}) {
      check_or_regen(key, batch);
    }
  }
  obs::tracer().stop();
  EXPECT_FALSE(obs::tracer().snapshot().empty());
  obs::tracer().reset();
  obs::flight_recorder().reset();
}

}  // namespace
}  // namespace hp::core
