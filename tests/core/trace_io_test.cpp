#include "core/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/random_search.hpp"
#include "fake_objective.hpp"

namespace hp::core {
namespace {

RunTrace sample_trace() {
  RunTrace trace;
  EvaluationRecord a;
  a.index = 0;
  a.timestamp_s = 100.5;
  a.status = EvaluationStatus::Completed;
  a.test_error = 0.25;
  a.measured_power_w = 88.25;
  a.measured_memory_mb = 640.0;
  a.cost_s = 95.5;
  trace.add(a);
  EvaluationRecord b;
  b.index = 1;
  b.timestamp_s = 110.0;
  b.status = EvaluationStatus::ModelFiltered;
  b.test_error = 1.0;
  b.violates_constraints = true;
  b.cost_s = 3.0;
  trace.add(b);
  EvaluationRecord c;
  c.index = 2;
  c.timestamp_s = 150.0;
  c.status = EvaluationStatus::EarlyTerminated;
  c.test_error = 0.9;
  c.diverged = true;
  c.cost_s = 30.0;
  trace.add(c);
  EvaluationRecord d;
  d.index = 3;
  d.timestamp_s = 160.0;
  d.status = EvaluationStatus::InfeasibleArchitecture;
  d.test_error = 1.0;
  d.cost_s = 5.0;
  trace.add(d);
  return trace;
}

TEST(TraceIo, RoundTripPreservesEveryField) {
  const RunTrace original = sample_trace();
  std::stringstream buffer;
  original.write_csv(buffer);
  const RunTrace loaded = load_trace_csv(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const auto& a = original.records()[i];
    const auto& b = loaded.records()[i];
    EXPECT_EQ(b.index, a.index);
    EXPECT_EQ(b.timestamp_s, a.timestamp_s);
    EXPECT_EQ(b.status, a.status);
    EXPECT_EQ(b.test_error, a.test_error);
    EXPECT_EQ(b.diverged, a.diverged);
    EXPECT_EQ(b.measured_power_w.has_value(), a.measured_power_w.has_value());
    if (a.measured_power_w) {
      EXPECT_EQ(*b.measured_power_w, *a.measured_power_w);
    }
    EXPECT_EQ(b.measured_memory_mb.has_value(),
              a.measured_memory_mb.has_value());
    EXPECT_EQ(b.violates_constraints, a.violates_constraints);
    EXPECT_EQ(b.cost_s, a.cost_s);
  }
}

TEST(TraceIo, LoadedTraceSupportsDerivedQueries) {
  std::stringstream buffer;
  sample_trace().write_csv(buffer);
  const RunTrace loaded = load_trace_csv(buffer);
  EXPECT_EQ(loaded.function_evaluations(), 2u);
  EXPECT_EQ(loaded.model_filtered_count(), 1u);
  EXPECT_EQ(loaded.early_terminated_count(), 1u);
  const auto best = loaded.best();
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->test_error, 0.25);
  EXPECT_DOUBLE_EQ(loaded.total_time_s(), 160.0);
}

TEST(TraceIo, RoundTripsMemoryAbsentRecords) {
  // Tegra-class platforms report power but no memory counter (paper
  // footnote 1): power present, memory absent must survive the round trip
  // for every status that reaches measurement.
  RunTrace trace;
  EvaluationRecord a;
  a.index = 0;
  a.timestamp_s = 50.0;
  a.status = EvaluationStatus::Completed;
  a.test_error = 0.125;
  a.measured_power_w = 10.5;  // memory stays nullopt
  a.cost_s = 45.0;
  trace.add(a);
  EvaluationRecord b;
  b.index = 1;
  b.timestamp_s = 60.0;
  b.status = EvaluationStatus::EarlyTerminated;
  b.test_error = 0.9;
  b.diverged = true;
  b.cost_s = 4.5;
  trace.add(b);

  std::stringstream buffer;
  trace.write_csv(buffer);
  const RunTrace loaded = load_trace_csv(buffer);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded.records()[0].measured_power_w.has_value());
  EXPECT_EQ(*loaded.records()[0].measured_power_w, 10.5);
  EXPECT_FALSE(loaded.records()[0].measured_memory_mb.has_value());
  EXPECT_FALSE(loaded.records()[1].measured_power_w.has_value());
  EXPECT_TRUE(loaded.records()[1].diverged);
  EXPECT_EQ(loaded.records()[1].status, EvaluationStatus::EarlyTerminated);
}

TEST(TraceIo, BatchedRunTraceRoundTrips) {
  // A trace produced by the real batched-parallel loop (mixed completed /
  // early-terminated records) survives save + load: discrete fields
  // exactly, doubles to the CSV's 6-significant-digit precision.
  const HyperParameterSpace space = testing::fake_space();
  testing::FakeObjective objective(space);
  objective.set_diverge_above(0.8);  // some candidates early-terminate
  ConstraintBudgets budgets;
  budgets.power_w = 70.0;
  OptimizerOptions opt;
  opt.seed = 3;
  opt.max_function_evaluations = 10;
  opt.batch_size = 4;
  opt.num_threads = 2;
  opt.use_hardware_models = false;
  RandomSearchOptimizer optimizer(space, objective, budgets, nullptr, opt);
  const Optimizer::Result result = optimizer.run();
  const RunTrace& original = result.trace;

  std::stringstream buffer;
  original.write_csv(buffer);
  const RunTrace loaded = load_trace_csv(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const auto& a = original.records()[i];
    const auto& b = loaded.records()[i];
    EXPECT_EQ(b.index, a.index);
    EXPECT_EQ(b.status, a.status);
    EXPECT_EQ(b.diverged, a.diverged);
    EXPECT_EQ(b.violates_constraints, a.violates_constraints);
    EXPECT_EQ(b.measured_power_w.has_value(), a.measured_power_w.has_value());
    EXPECT_NEAR(b.test_error, a.test_error, 1e-5 * (1.0 + a.test_error));
    EXPECT_NEAR(b.timestamp_s, a.timestamp_s, 1e-5 * (1.0 + a.timestamp_s));
    EXPECT_NEAR(b.cost_s, a.cost_s, 1e-5 * (1.0 + a.cost_s));
  }
  EXPECT_EQ(loaded.function_evaluations(), original.function_evaluations());
  EXPECT_EQ(loaded.early_terminated_count(), original.early_terminated_count());
  EXPECT_EQ(loaded.measured_violation_count(),
            original.measured_violation_count());
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream buffer;
  RunTrace{}.write_csv(buffer);
  EXPECT_EQ(load_trace_csv(buffer).size(), 0u);
}

TEST(TraceIo, RejectsBadHeader) {
  std::stringstream buffer("foo,bar\n");
  EXPECT_THROW((void)load_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsEmptyStream) {
  std::stringstream buffer;
  EXPECT_THROW((void)load_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsWrongFieldCount) {
  std::stringstream buffer(
      "index,timestamp_s,status,test_error,diverged,power_w,memory_mb,"
      "violates,cost_s\n1,2,completed\n");
  EXPECT_THROW((void)load_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsUnknownStatus) {
  std::stringstream buffer(
      "index,timestamp_s,status,test_error,diverged,power_w,memory_mb,"
      "violates,cost_s\n0,1,weird,0.5,0,,,0,1\n");
  EXPECT_THROW((void)load_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsMalformedNumber) {
  std::stringstream buffer(
      "index,timestamp_s,status,test_error,diverged,power_w,memory_mb,"
      "violates,cost_s\n0,abc,completed,0.5,0,,,0,1\n");
  EXPECT_THROW((void)load_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/hp_trace_io_test.csv";
  save_trace_csv_file(sample_trace(), path);
  const RunTrace loaded = load_trace_csv_file(path);
  EXPECT_EQ(loaded.size(), 4u);
  std::remove(path.c_str());
  EXPECT_THROW((void)load_trace_csv_file(path), std::runtime_error);
}

}  // namespace
}  // namespace hp::core
