#include "core/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace hp::core {
namespace {

RunTrace sample_trace() {
  RunTrace trace;
  EvaluationRecord a;
  a.index = 0;
  a.timestamp_s = 100.5;
  a.status = EvaluationStatus::Completed;
  a.test_error = 0.25;
  a.measured_power_w = 88.25;
  a.measured_memory_mb = 640.0;
  a.cost_s = 95.5;
  trace.add(a);
  EvaluationRecord b;
  b.index = 1;
  b.timestamp_s = 110.0;
  b.status = EvaluationStatus::ModelFiltered;
  b.test_error = 1.0;
  b.violates_constraints = true;
  b.cost_s = 3.0;
  trace.add(b);
  EvaluationRecord c;
  c.index = 2;
  c.timestamp_s = 150.0;
  c.status = EvaluationStatus::EarlyTerminated;
  c.test_error = 0.9;
  c.diverged = true;
  c.cost_s = 30.0;
  trace.add(c);
  EvaluationRecord d;
  d.index = 3;
  d.timestamp_s = 160.0;
  d.status = EvaluationStatus::InfeasibleArchitecture;
  d.test_error = 1.0;
  d.cost_s = 5.0;
  trace.add(d);
  return trace;
}

TEST(TraceIo, RoundTripPreservesEveryField) {
  const RunTrace original = sample_trace();
  std::stringstream buffer;
  original.write_csv(buffer);
  const RunTrace loaded = load_trace_csv(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const auto& a = original.records()[i];
    const auto& b = loaded.records()[i];
    EXPECT_EQ(b.index, a.index);
    EXPECT_EQ(b.timestamp_s, a.timestamp_s);
    EXPECT_EQ(b.status, a.status);
    EXPECT_EQ(b.test_error, a.test_error);
    EXPECT_EQ(b.diverged, a.diverged);
    EXPECT_EQ(b.measured_power_w.has_value(), a.measured_power_w.has_value());
    if (a.measured_power_w) {
      EXPECT_EQ(*b.measured_power_w, *a.measured_power_w);
    }
    EXPECT_EQ(b.measured_memory_mb.has_value(),
              a.measured_memory_mb.has_value());
    EXPECT_EQ(b.violates_constraints, a.violates_constraints);
    EXPECT_EQ(b.cost_s, a.cost_s);
  }
}

TEST(TraceIo, LoadedTraceSupportsDerivedQueries) {
  std::stringstream buffer;
  sample_trace().write_csv(buffer);
  const RunTrace loaded = load_trace_csv(buffer);
  EXPECT_EQ(loaded.function_evaluations(), 2u);
  EXPECT_EQ(loaded.model_filtered_count(), 1u);
  EXPECT_EQ(loaded.early_terminated_count(), 1u);
  const auto best = loaded.best();
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->test_error, 0.25);
  EXPECT_DOUBLE_EQ(loaded.total_time_s(), 160.0);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream buffer;
  RunTrace{}.write_csv(buffer);
  EXPECT_EQ(load_trace_csv(buffer).size(), 0u);
}

TEST(TraceIo, RejectsBadHeader) {
  std::stringstream buffer("foo,bar\n");
  EXPECT_THROW((void)load_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsEmptyStream) {
  std::stringstream buffer;
  EXPECT_THROW((void)load_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsWrongFieldCount) {
  std::stringstream buffer(
      "index,timestamp_s,status,test_error,diverged,power_w,memory_mb,"
      "violates,cost_s\n1,2,completed\n");
  EXPECT_THROW((void)load_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsUnknownStatus) {
  std::stringstream buffer(
      "index,timestamp_s,status,test_error,diverged,power_w,memory_mb,"
      "violates,cost_s\n0,1,weird,0.5,0,,,0,1\n");
  EXPECT_THROW((void)load_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsMalformedNumber) {
  std::stringstream buffer(
      "index,timestamp_s,status,test_error,diverged,power_w,memory_mb,"
      "violates,cost_s\n0,abc,completed,0.5,0,,,0,1\n");
  EXPECT_THROW((void)load_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/hp_trace_io_test.csv";
  save_trace_csv_file(sample_trace(), path);
  const RunTrace loaded = load_trace_csv_file(path);
  EXPECT_EQ(loaded.size(), 4u);
  std::remove(path.c_str());
  EXPECT_THROW((void)load_trace_csv_file(path), std::runtime_error);
}

}  // namespace
}  // namespace hp::core
