#include "core/grid_search.hpp"

#include <gtest/gtest.h>

#include <set>

#include "fake_objective.hpp"

namespace hp::core {
namespace {

using testing::FakeObjective;
using testing::fake_space;

OptimizerOptions fixed_evals(std::size_t n) {
  OptimizerOptions opt;
  opt.max_function_evaluations = n;
  opt.seed = 1;
  return opt;
}

TEST(GridSearch, ValidatesLevels) {
  auto space = fake_space();
  FakeObjective obj(space);
  GridSearchOptions grid;
  grid.levels_per_dimension = 1;
  EXPECT_THROW(GridSearchOptimizer(space, obj, {}, nullptr, fixed_evals(4),
                                   grid),
               std::invalid_argument);
}

TEST(GridSearch, GridSizeIsLevelsToTheD) {
  auto space = fake_space();
  FakeObjective obj(space);
  GridSearchOptions grid;
  grid.levels_per_dimension = 4;
  GridSearchOptimizer gs(space, obj, {}, nullptr, fixed_evals(1), grid);
  EXPECT_EQ(gs.grid_size(), 16u);
  EXPECT_EQ(gs.name(), "Grid");
}

TEST(GridSearch, VisitsEveryGridPointExactlyOnce) {
  auto space = fake_space();
  FakeObjective obj(space, 1.0);
  GridSearchOptions grid;
  grid.levels_per_dimension = 3;
  GridSearchOptimizer gs(space, obj, {}, nullptr, fixed_evals(9), grid);
  const auto result = gs.run();
  std::set<std::pair<double, double>> visited;
  for (const auto& r : result.trace.records()) {
    visited.insert({r.config[0], r.config[1]});
  }
  EXPECT_EQ(visited.size(), 9u);  // all distinct
  // Level centers: 1/6, 3/6, 5/6 in unit coordinates.
  for (const auto& [a, b] : visited) {
    bool level_a = false;
    for (double c : {1.0 / 6, 3.0 / 6, 5.0 / 6}) {
      if (std::abs(a - c) < 1e-12) level_a = true;
    }
    EXPECT_TRUE(level_a) << a;
  }
}

TEST(GridSearch, DeterministicAcrossRuns) {
  auto space = fake_space();
  FakeObjective obj1(space), obj2(space);
  GridSearchOptions grid;
  GridSearchOptimizer a(space, obj1, {}, nullptr, fixed_evals(6), grid);
  GridSearchOptimizer b(space, obj2, {}, nullptr, fixed_evals(6), grid);
  const auto ra = a.run();
  const auto rb = b.run();
  for (std::size_t i = 0; i < ra.trace.size(); ++i) {
    EXPECT_EQ(ra.trace.records()[i].config, rb.trace.records()[i].config);
  }
}

TEST(GridSearch, WrapsAroundWhenBudgetOutlastsGrid) {
  auto space = fake_space();
  FakeObjective obj(space, 1.0);
  GridSearchOptions grid;
  grid.levels_per_dimension = 2;  // 4 points
  grid.wrap_around = true;        // opt back into the historic revisiting
  GridSearchOptimizer gs(space, obj, {}, nullptr, fixed_evals(10), grid);
  const auto result = gs.run();
  EXPECT_EQ(result.trace.size(), 10u);
  // Points 0 and 4 coincide (wrap-around).
  EXPECT_EQ(result.trace.records()[0].config,
            result.trace.records()[4].config);
}

TEST(GridSearch, StopsAtExhaustionByDefault) {
  auto space = fake_space();
  FakeObjective obj(space, 1.0);
  GridSearchOptions grid;
  grid.levels_per_dimension = 2;  // 4 points
  GridSearchOptimizer gs(space, obj, {}, nullptr, fixed_evals(10), grid);
  const auto result = gs.run();
  // Budget allows 10 evaluations, but the grid only has 4 distinct points:
  // the proposer reports exhausted() and the run ends without repeats.
  EXPECT_EQ(result.trace.size(), 4u);
  EXPECT_TRUE(gs.exhausted());
  std::set<std::pair<double, double>> visited;
  for (const auto& r : result.trace.records()) {
    visited.insert({r.config[0], r.config[1]});
  }
  EXPECT_EQ(visited.size(), 4u);
}

TEST(GridSearch, FinalShortBatchIsTruncatedNotPadded) {
  auto space = fake_space();
  FakeObjective obj(space, 1.0);
  GridSearchOptions grid;
  grid.levels_per_dimension = 3;  // 9 points
  OptimizerOptions opt = fixed_evals(20);
  opt.batch_size = 4;  // rounds of 4: 4 + 4 + (short) 1
  GridSearchOptimizer gs(space, obj, {}, nullptr, opt, grid);
  const auto result = gs.run();
  // Previously the 3rd round was padded to 4 by wrapping the cursor and
  // re-proposing already-visited points; now it is truncated to the one
  // remaining grid point.
  EXPECT_EQ(result.trace.size(), 9u);
  std::set<std::pair<double, double>> visited;
  for (const auto& r : result.trace.records()) {
    visited.insert({r.config[0], r.config[1]});
  }
  EXPECT_EQ(visited.size(), 9u);  // every point exactly once, no repeats
}

TEST(GridSearch, CoarseGridMissesSharpOptimum) {
  // The paper's point: the optimum (0.3, 0.7) sits between the 2-level
  // grid points, so grid search cannot approach it the way random/BO can.
  auto space = fake_space();
  FakeObjective obj(space, 1.0);
  GridSearchOptions grid;
  grid.levels_per_dimension = 2;  // points at 0.25 / 0.75 only
  GridSearchOptimizer gs(space, obj, {}, nullptr, fixed_evals(4), grid);
  const auto result = gs.run();
  ASSERT_TRUE(result.best.has_value());
  // Best grid point (0.25, 0.75): error = 0.0025 + 0.5*0.0025 = 0.00375 —
  // bounded away from the true optimum 0.
  EXPECT_NEAR(result.best->test_error, 0.00375, 1e-9);
}

TEST(GridSearch, RespectsModelFilter) {
  auto space = fake_space();
  FakeObjective obj(space);
  ConstraintBudgets budgets;
  budgets.power_w = 40.0;  // only a <= 0.4 feasible
  HardwareConstraints constraints(
      budgets, HardwareModel(ModelForm::Linear, linalg::Vector{100.0}, 0.0, 1.0),
      std::nullopt);
  OptimizerOptions opt;
  opt.max_samples = 9;
  GridSearchOptions grid;
  grid.levels_per_dimension = 3;
  GridSearchOptimizer gs(space, obj, budgets, &constraints, opt, grid);
  const auto result = gs.run();
  // Grid levels for a: 1/6 (~17W), 3/6 (50W), 5/6 (83W): 6 of 9 filtered.
  EXPECT_EQ(result.trace.model_filtered_count(), 6u);
  EXPECT_EQ(result.trace.function_evaluations(), 3u);
}

}  // namespace
}  // namespace hp::core
