#include "cli/args.hpp"

#include <gtest/gtest.h>

namespace hp::cli {
namespace {

Args parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, EmptyCommandLine) {
  const Args args = parse({});
  EXPECT_TRUE(args.positional().empty());
  EXPECT_TRUE(args.option_names().empty());
}

TEST(Args, PositionalArgumentsInOrder) {
  const Args args = parse({"profile", "extra"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "profile");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(Args, OptionWithValue) {
  const Args args = parse({"--device", "GTX 1070"});
  EXPECT_TRUE(args.has("device"));
  EXPECT_EQ(args.get("device"), "GTX 1070");
}

TEST(Args, BooleanFlagHasNoValue) {
  const Args args = parse({"--default-mode", "--seed", "3"});
  EXPECT_TRUE(args.has("default-mode"));
  EXPECT_FALSE(args.get("default-mode").has_value());
  EXPECT_EQ(args.get("seed"), "3");
}

TEST(Args, FlagFollowedByOptionIsFlag) {
  const Args args = parse({"--verbose", "--level", "2"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.get("verbose").has_value());
}

TEST(Args, GetOrFallsBack) {
  const Args args = parse({"--method", "rand"});
  EXPECT_EQ(args.get_or("method", "hw-ieci"), "rand");
  EXPECT_EQ(args.get_or("missing", "fallback"), "fallback");
}

TEST(Args, TypedAccessors) {
  const Args args = parse({"--hours", "2.5", "--evals", "50"});
  EXPECT_DOUBLE_EQ(*args.get_double("hours"), 2.5);
  EXPECT_EQ(*args.get_int("evals"), 50);
  EXPECT_DOUBLE_EQ(args.get_double_or("missing", 7.0), 7.0);
  EXPECT_EQ(args.get_int_or("missing", 9), 9);
}

TEST(Args, MalformedNumbersThrow) {
  const Args args = parse({"--hours", "2.5x", "--evals", "1.5"});
  EXPECT_THROW((void)args.get_double("hours"), std::invalid_argument);
  EXPECT_THROW((void)args.get_int("evals"), std::invalid_argument);
}

TEST(Args, NegativeNumbersParseAsValues) {
  // "-3" does not start with "--", so it is consumed as the value.
  const Args args = parse({"--offset", "-3"});
  EXPECT_EQ(*args.get_int("offset"), -3);
}

TEST(Args, BareDoubleDashThrows) {
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(Args, RequireKnownAcceptsKnown) {
  const Args args = parse({"--device", "X", "--seed", "1"});
  EXPECT_NO_THROW(args.require_known({"device", "seed", "hours"}));
}

TEST(Args, RequireKnownRejectsUnknown) {
  const Args args = parse({"--devise", "X"});  // typo
  EXPECT_THROW(args.require_known({"device"}), std::invalid_argument);
}

TEST(Args, LastOccurrenceWins) {
  const Args args = parse({"--seed", "1", "--seed", "2"});
  EXPECT_EQ(args.get("seed"), "2");
}

TEST(Args, GetUintParsesAndDefaults) {
  const Args args = parse({"--batch", "4"});
  EXPECT_EQ(*args.get_uint("batch"), 4u);
  EXPECT_EQ(args.get_uint_or("batch", 1), 4u);
  EXPECT_EQ(args.get_uint_or("threads", 8), 8u);
  EXPECT_FALSE(args.get_uint("threads").has_value());
}

TEST(Args, GetUintRejectsNegativeAndMalformed) {
  EXPECT_THROW((void)parse({"--batch", "-3"}).get_uint("batch"),
               std::invalid_argument);
  EXPECT_THROW((void)parse({"--batch", "2.5"}).get_uint("batch"),
               std::invalid_argument);
}

TEST(Args, MixedPositionalAndOptions) {
  const Args args = parse({"optimize", "--seed", "4", "trailing"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "optimize");
  EXPECT_EQ(args.positional()[1], "trailing");
  EXPECT_EQ(*args.get_int("seed"), 4);
}

}  // namespace
}  // namespace hp::cli
