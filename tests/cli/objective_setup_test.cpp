// Direct tests for cli::build_evaluation_stack / evaluation_policy — the
// one construction path the optimize scheduler AND the hpo-worker fleet
// process share. Until now these option combinations were only exercised
// indirectly through CLI integration runs; here each combination the
// journal/resume/fleet paths rely on is pinned at the unit level,
// including the bit-identity requirement between two processes (driver
// and worker) built from the same flag values.

#include "cli/objective_setup.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/model_io.hpp"

namespace hp::cli {
namespace {

Args parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(ObjectiveSetup, DefaultsToMnistHyperPowerModeWithoutFaults) {
  const Args args = parse({});
  const auto stack = build_evaluation_stack(args);
  EXPECT_EQ(stack->problem.name(), "mnist");
  EXPECT_TRUE(stack->hyperpower_mode);
  EXPECT_FALSE(stack->budgets.any());
  // No budgets: nothing to filter against, so no models are trained.
  EXPECT_FALSE(stack->trained_models);
  EXPECT_FALSE(stack->framework->power_model().has_value());
  // No fault rate: the search objective IS the testbed objective.
  EXPECT_EQ(stack->faulty, nullptr);
  EXPECT_EQ(&stack->search_objective(),
            static_cast<core::Objective*>(stack->objective.get()));
}

TEST(ObjectiveSetup, DefaultModeFlagDisablesHyperPowerEnhancements) {
  const auto stack = build_evaluation_stack(parse({"--default-mode"}));
  EXPECT_FALSE(stack->hyperpower_mode);

  const EvaluationPolicy policy = evaluation_policy(parse({"--default-mode"}));
  EXPECT_FALSE(policy.use_early_termination);
  EXPECT_TRUE(evaluation_policy(parse({})).use_early_termination);
}

TEST(ObjectiveSetup, BudgetsInHyperPowerModeTrainHardwareModels) {
  const auto stack = build_evaluation_stack(
      parse({"--problem", "tiny_mnist", "--power-budget", "60",
             "--profile-samples", "30"}));
  ASSERT_TRUE(stack->budgets.power_w.has_value());
  EXPECT_DOUBLE_EQ(*stack->budgets.power_w, 60.0);
  EXPECT_TRUE(stack->trained_models);
  EXPECT_EQ(stack->profiled_configs, 30u);
  EXPECT_TRUE(stack->framework->power_model().has_value());
  EXPECT_TRUE(stack->framework->memory_model().has_value());
}

TEST(ObjectiveSetup, BudgetsInDefaultModeSkipModelTraining) {
  // The paper's fixed-evaluations comparison: budgets are set but the
  // default-mode run trains every candidate — no a-priori models.
  const auto stack = build_evaluation_stack(
      parse({"--problem", "tiny_mnist", "--power-budget", "60",
             "--default-mode"}));
  EXPECT_FALSE(stack->trained_models);
  EXPECT_FALSE(stack->framework->power_model().has_value());
}

// The fleet's golden-trace guarantee: a worker process and the driver,
// given identical flag values, must build bit-identical fallback models
// (fixed simulator + sampling seeds). A drifting weight would silently
// de-synchronize worker-side evaluations from in-process ones.
TEST(ObjectiveSetup, TwoStacksFromIdenticalFlagsTrainBitIdenticalModels) {
  const auto flags = {"--problem", "tiny_mnist", "--power-budget", "60",
                      "--memory-budget", "900", "--profile-samples", "30"};
  const auto driver = build_evaluation_stack(parse(flags));
  const auto worker = build_evaluation_stack(parse(flags));
  ASSERT_TRUE(driver->framework->power_model().has_value());
  ASSERT_TRUE(worker->framework->power_model().has_value());
  const core::HardwareModel& a = driver->framework->power_model()->model;
  const core::HardwareModel& b = worker->framework->power_model()->model;
  EXPECT_EQ(a.weights().raw(), b.weights().raw());  // bit-exact doubles
  EXPECT_EQ(a.intercept(), b.intercept());
  EXPECT_EQ(a.residual_sd(), b.residual_sd());
  const core::HardwareModel& ma = driver->framework->memory_model()->model;
  const core::HardwareModel& mb = worker->framework->memory_model()->model;
  EXPECT_EQ(ma.weights().raw(), mb.weights().raw());
}

TEST(ObjectiveSetup, ModelFilesLoadInsteadOfTraining) {
  const std::string power_path =
      std::string(::testing::TempDir()) + "/setup_power.hpm";
  const std::string memory_path =
      std::string(::testing::TempDir()) + "/setup_memory.hpm";
  const auto trained = build_evaluation_stack(
      parse({"--problem", "tiny_mnist", "--power-budget", "60",
             "--memory-budget", "900", "--profile-samples", "30"}));
  core::save_hardware_model_file(trained->framework->power_model()->model,
                                 power_path);
  core::save_hardware_model_file(trained->framework->memory_model()->model,
                                 memory_path);

  // `hyperpower train` amortization: a stack pointed at the saved files
  // loads them instead of re-profiling, and predicts identically.
  const auto loaded = build_evaluation_stack(
      parse({"--problem", "tiny_mnist", "--power-budget", "60",
             "--memory-budget", "900", "--power-model", power_path.c_str(),
             "--memory-model", memory_path.c_str()}));
  EXPECT_FALSE(loaded->trained_models);
  EXPECT_EQ(loaded->profiled_configs, 0u);
  ASSERT_TRUE(loaded->framework->power_model().has_value());
  EXPECT_EQ(loaded->framework->power_model()->model.weights().raw(),
            trained->framework->power_model()->model.weights().raw());
  std::remove(power_path.c_str());
  std::remove(memory_path.c_str());
}

TEST(ObjectiveSetup, FaultRateWrapsTheObjectiveInTheDecorator) {
  const auto stack = build_evaluation_stack(
      parse({"--fault-rate", "0.25", "--fault-seed", "99"}));
  ASSERT_NE(stack->faulty, nullptr);
  EXPECT_EQ(&stack->search_objective(),
            static_cast<core::Objective*>(stack->faulty.get()));
  EXPECT_DOUBLE_EQ(stack->fault_spec.failure_rate, 0.25);
  EXPECT_EQ(stack->fault_spec.seed, 99u);
}

// Fleet chaos flags reach the worker through fault_spec even when the
// evaluation-level failure rate is zero: the worker keys its kill/hang/
// corrupt schedule off the spec, while the driver-side objective stays
// undecorated. A driver that wrapped the objective for process-level
// chaos would double-inject.
TEST(ObjectiveSetup, WorkerChaosRatesParseWithoutDecoratingTheDriver) {
  const auto stack = build_evaluation_stack(
      parse({"--worker-kill-rate", "0.1", "--worker-hang-rate", "0.05",
             "--reply-corrupt-rate", "0.02"}));
  EXPECT_EQ(stack->faulty, nullptr);  // failure_rate is 0: no decorator
  EXPECT_DOUBLE_EQ(stack->fault_spec.worker_kill_rate, 0.1);
  EXPECT_DOUBLE_EQ(stack->fault_spec.worker_hang_rate, 0.05);
  EXPECT_DOUBLE_EQ(stack->fault_spec.reply_corrupt_rate, 0.02);
  EXPECT_DOUBLE_EQ(stack->fault_spec.failure_rate, 0.0);
}

TEST(ObjectiveSetup, UnknownProblemAndDeviceThrow) {
  EXPECT_THROW((void)build_evaluation_stack(parse({"--problem", "imagenet"})),
               std::invalid_argument);
  EXPECT_THROW((void)build_evaluation_stack(parse({"--device", "TPUv9"})),
               std::invalid_argument);
  EXPECT_THROW((void)build_evaluation_stack(
                   parse({"--power-model", "/no/such/file.hpm",
                          "--power-budget", "60"})),
               std::runtime_error);
}

TEST(ObjectiveSetup, EvaluationPolicyParsesRetrySettings) {
  const EvaluationPolicy policy = evaluation_policy(
      parse({"--seed", "17", "--retries", "3", "--eval-timeout", "45.5"}));
  EXPECT_EQ(policy.seed, 17u);
  EXPECT_EQ(policy.retry.max_attempts, 4u);  // retries + the first attempt
  EXPECT_DOUBLE_EQ(policy.retry.eval_timeout_s, 45.5);

  const EvaluationPolicy defaults = evaluation_policy(parse({}));
  EXPECT_EQ(defaults.seed, 1u);
  EXPECT_EQ(defaults.retry.max_attempts, core::RetryPolicy{}.max_attempts);
}

// The flag list is what the scheduler and the worker merge into their
// require_known sets; every flag the builder consumes must be in it, or a
// valid fleet command line would be rejected as unknown.
TEST(ObjectiveSetup, EvaluationStackFlagsCoverEveryConsumedFlag) {
  const Args args = parse(
      {"--problem", "tiny_mnist", "--device", "GTX 1070", "--power-budget",
       "60", "--memory-budget", "900", "--default-mode", "--seed", "3",
       "--retries", "1", "--eval-timeout", "30", "--fault-rate", "0.1",
       "--fault-seed", "5", "--sensor-fault-rate", "0.1",
       "--worker-kill-rate", "0.1", "--worker-hang-rate", "0.1",
       "--reply-corrupt-rate", "0.1", "--power-model", "p.hpm",
       "--memory-model", "m.hpm", "--profile-samples", "20"});
  EXPECT_NO_THROW(args.require_known(evaluation_stack_flags()));
}

}  // namespace
}  // namespace hp::cli
