// Unit tests for the span tracer and flight recorder (src/obs/trace.hpp):
// stable span-id derivation, current-span context restoration, ring
// wrap/truncation accounting, Chrome-trace JSON escaping (same hostile
// strings as the JSONL sink fixtures in log_test.cpp), flight-recorder
// dumps on an injected ContractViolation, and phase_self_times.

#include "obs/trace.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/contracts.hpp"
#include "obs/span.hpp"

namespace hp::obs {
namespace {

/// Starts the process-wide tracer for one test and tears it back down so
/// later tests (and the rest of the binary) see it disabled and empty.
class TracerOn {
 public:
  explicit TracerOn(TraceConfig config = {}) { tracer().start(config); }
  ~TracerOn() {
    tracer().stop();
    tracer().reset();
    flight_recorder().reset();
  }

  TracerOn(const TracerOn&) = delete;
  TracerOn& operator=(const TracerOn&) = delete;
};

/// Opens and immediately closes a span, returning its id.
std::uint64_t record_span(const char* name, std::uint64_t key) {
  const std::uint64_t parent = tracer().current_span();
  const std::uint64_t id = tracer().begin_span(name, key);
  tracer().end_span(id, parent, name, std::chrono::steady_clock::now(),
                    /*dur_s=*/0.0, nullptr, 0);
  return id;
}

TEST(TraceIdTest, IdsAreStableAcrossRestartsAndDistinctPerPosition) {
  std::uint64_t first_a = 0;
  std::uint64_t first_b = 0;
  std::uint64_t first_child = 0;
  {
    TracerOn on;
    first_a = record_span("phase.a", 1);
    first_b = record_span("phase.a", 2);
    const std::uint64_t outer = tracer().begin_span("phase.outer", 0);
    first_child = record_span("phase.a", 1);
    tracer().end_span(outer, 0, "phase.outer",
                      std::chrono::steady_clock::now(), 0.0, nullptr, 0);
  }
  // Same (parent, name, key) => same id; any coordinate change => new id.
  EXPECT_NE(first_a, 0u);
  EXPECT_NE(first_a, first_b);
  EXPECT_NE(first_a, first_child);
  {
    TracerOn on;
    EXPECT_EQ(record_span("phase.a", 1), first_a);
    EXPECT_EQ(record_span("phase.a", 2), first_b);
    EXPECT_NE(record_span("phase.b", 1), first_a);
  }
}

TEST(TraceIdTest, BeginSpanMakesSpanCurrentAndEndSpanRestoresParent) {
  TracerOn on;
  EXPECT_EQ(tracer().current_span(), 0u);
  const std::uint64_t outer = tracer().begin_span("phase.outer", 0);
  EXPECT_EQ(tracer().current_span(), outer);
  const std::uint64_t inner = tracer().begin_span("phase.inner", 0);
  EXPECT_EQ(tracer().current_span(), inner);
  tracer().end_span(inner, outer, "phase.inner",
                    std::chrono::steady_clock::now(), 0.0, nullptr, 0);
  EXPECT_EQ(tracer().current_span(), outer);
  tracer().end_span(outer, 0, "phase.outer", std::chrono::steady_clock::now(),
                    0.0, nullptr, 0);
  EXPECT_EQ(tracer().current_span(), 0u);
}

TEST(TraceIdTest, ScopedParentExchangesAndRestoresContext) {
  TracerOn on;
  const std::uint64_t outer = tracer().begin_span("phase.outer", 0);
  {
    const ScopedParent adopted(1234);
    EXPECT_EQ(tracer().current_span(), 1234u);
  }
  EXPECT_EQ(tracer().current_span(), outer);
  tracer().end_span(outer, 0, "phase.outer", std::chrono::steady_clock::now(),
                    0.0, nullptr, 0);
}

TEST(ScopedTimerTest, NestedTimersRecordParentLinkedSpans) {
  TracerOn on;
  {
    ScopedTimer outer("test.outer");
    {
      ScopedTimer inner("test.inner", nullptr, LogLevel::kTrace, 7);
      inner.trace_arg({"sample", 7});
    }
  }
  const std::vector<TraceEventView> events = tracer().snapshot();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const TraceEventView& v : events) {
    if (std::string(v.event.name) == "test.outer") outer = &v.event;
    if (std::string(v.event.name) == "test.inner") inner = &v.event;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->parent, outer->id);
  ASSERT_EQ(inner->num_args, 1u);
  EXPECT_STREQ(inner->args[0].key, "sample");
  EXPECT_EQ(inner->args[0].u, 7u);
}

TEST(ScopedTimerTest, DisabledTracerRecordsNothing) {
  tracer().stop();
  tracer().reset();
  {
    ScopedTimer timer("test.disabled");
    timer.trace_arg({"sample", 1});
  }
  EXPECT_EQ(tracer().current_span(), 0u);
  EXPECT_TRUE(tracer().snapshot().empty());
  EXPECT_EQ(tracer().dropped_events(), 0u);
}

TEST(TraceRingTest, WrappingKeepsNewestEventsAndCountsDropped) {
  TraceConfig config;
  config.ring_kb = 0;  // rounds down to the 4-event minimum capacity
  TracerOn on(config);
  for (std::uint64_t i = 0; i < 10; ++i) record_span("test.wrap", i);
  const std::vector<TraceEventView> events = tracer().snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(tracer().dropped_events(), 6u);
  // Oldest-first within the ring: the four newest keys survive, in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].event.id, record_span("test.wrap", 6 + i));
  }
}

TEST(TraceExportTest, ChromeTraceEscapesHostileStringsLikeTheJsonlSink) {
  TracerOn on;
  // Same fixture family as JsonEscapeTest in log_test.cpp. Names and arg
  // strings must have static storage (the ring keeps pointers).
  static constexpr char kHostile[] = "a\"b\\c\nd\te\rf\bg\fh\x01z";
  {
    ScopedTimer timer("test.escape");
    timer.trace_arg({"detail", static_cast<const char*>(kHostile)});
    timer.trace_arg({"ratio", 0.5});
  }
  tracer().instant("test.instant", {{"attempt", 3}});
  std::ostringstream os;
  tracer().write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(
      json.find("a\\\"b\\\\c\\nd\\te\\rf\\bg\\fh\\u0001z"),
      std::string::npos);
  // Raw control characters must never reach the output.
  EXPECT_EQ(json.find('\x01'), std::string::npos);
  // Span ids export as 16-hex-digit strings, never as JSON numbers.
  EXPECT_NE(json.find("\"id\":\"0x"), std::string::npos);
}

TEST(FlightRecorderTest, DumpsRecentEventsOnInjectedContractViolation) {
  FlightRecorder& flight = flight_recorder();
  flight.arm(16);
  std::string caught;
  try {
    const TraceArg args[] = {{"sample", 11}, {"attempt", 2}};
    flight.record("eval.failed", /*instant=*/true, /*t_s=*/1.5, args, 2);
    throw core::ContractViolation(core::ContractViolation::Kind::kAssert,
                                  "injected", __FILE__, __LINE__,
                                  "trace_test fixture");
  } catch (const core::ContractViolation& e) {
    caught = e.what();
    std::ostringstream os;
    flight.dump(os, "contract violation");
    const std::string text = os.str();
    EXPECT_NE(text.find("flight recorder dump (contract violation)"),
              std::string::npos);
    EXPECT_NE(text.find("1 events recorded, last 1 shown"),
              std::string::npos);
    EXPECT_NE(text.find("+1500000us I eval.failed sample=11 attempt=2"),
              std::string::npos);
  }
  EXPECT_NE(caught.find("injected"), std::string::npos);
  flight.reset();
  EXPECT_FALSE(flight.enabled());
}

TEST(FlightRecorderTest, RingWrapKeepsNewestAndDumpFdMatchesDump) {
  FlightRecorder& flight = flight_recorder();
  flight.arm(16);
  for (std::uint64_t i = 0; i < 20; ++i) {
    const TraceArg args[] = {{"attempt", i}};
    flight.record("eval.retry", true, static_cast<double>(i), args, 1);
  }
  EXPECT_EQ(flight.recorded(), 20u);
  std::ostringstream os;
  flight.dump(os, "wrap");
  const std::string text = os.str();
  EXPECT_NE(text.find("20 events recorded, last 16 shown"),
            std::string::npos);
  EXPECT_EQ(text.find("attempt=3"), std::string::npos);  // overwritten
  EXPECT_NE(text.find("attempt=4"), std::string::npos);  // oldest survivor
  EXPECT_NE(text.find("attempt=19"), std::string::npos);

  // dump_fd is the async-signal-safe twin: identical decode via write().
  char path[] = "/tmp/hp_flight_XXXXXX";
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  flight.dump_fd(fd, "wrap");
  ::lseek(fd, 0, SEEK_SET);
  std::string fd_text(text.size(), '\0');
  const ssize_t n = ::read(fd, fd_text.data(), fd_text.size());
  ::close(fd);
  std::remove(path);
  ASSERT_EQ(static_cast<std::size_t>(n), text.size());
  EXPECT_EQ(fd_text, text);
  flight.reset();
}

TEST(FlightRecorderTest, TracerForwardsSpansWhenArmed) {
  TraceConfig config;
  config.flight_recorder = true;
  config.flight_entries = 32;
  TracerOn on(config);
  ASSERT_TRUE(flight_recorder().enabled());
  record_span("test.forwarded", 5);
  tracer().instant("test.ping", {{"round", 9}});
  std::ostringstream os;
  flight_recorder().dump(os, "forwarding");
  const std::string text = os.str();
  EXPECT_NE(text.find("S test.forwarded"), std::string::npos);
  EXPECT_NE(text.find("I test.ping round=9"), std::string::npos);
}

TEST(PhaseSelfTimesTest, SubtractsDirectChildrenAndSortsBySelfTime) {
  std::vector<TraceEventView> events;
  const auto push = [&events](std::uint64_t id, std::uint64_t parent,
                              const char* name, double dur_s) {
    TraceEventView view;
    view.event.id = id;
    view.event.parent = parent;
    view.event.name = name;
    view.event.dur_s = dur_s;
    events.push_back(view);
  };
  push(1, 0, "run", 10.0);
  push(2, 1, "round", 4.0);
  push(3, 1, "round", 4.0);
  push(4, 2, "eval", 3.5);
  push(5, 3, "eval", 1.0);

  const std::vector<PhaseStat> stats = phase_self_times(events);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].name, "eval");  // 4.5 s self, no children
  EXPECT_EQ(stats[0].count, 2u);
  EXPECT_DOUBLE_EQ(stats[0].total_s, 4.5);
  EXPECT_DOUBLE_EQ(stats[0].self_s, 4.5);
  EXPECT_EQ(stats[1].name, "round");  // 8 - 4.5 = 3.5 s self
  EXPECT_DOUBLE_EQ(stats[1].self_s, 3.5);
  EXPECT_EQ(stats[2].name, "run");  // 10 - 8 = 2 s self
  EXPECT_DOUBLE_EQ(stats[2].self_s, 2.0);
}

TEST(PhaseSelfTimesTest, ClampsNegativeSelfTimeToZero) {
  std::vector<TraceEventView> events;
  TraceEventView parent;
  parent.event.id = 1;
  parent.event.name = "short";
  parent.event.dur_s = 1.0;
  TraceEventView child;
  child.event.id = 2;
  child.event.parent = 1;
  child.event.name = "long";
  child.event.dur_s = 2.0;  // clock-skewed child longer than its parent
  events.push_back(parent);
  events.push_back(child);
  const std::vector<PhaseStat> stats = phase_self_times(events);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "long");
  EXPECT_DOUBLE_EQ(stats[1].self_s, 0.0);
}

}  // namespace
}  // namespace hp::obs
