// Tracing is pure read-side (DESIGN.md §9): a run with the tracer
// recording (flight recorder armed, instants firing on every injected
// fault and retry) must produce a bit-identical evaluation trace to the
// same run with tracing off. Exercised for every method (Rand, Rand-Walk,
// Grid, HW-IECI, HW-CWEI) at batch sizes 1 and 4, on 4 threads, over the
// fault-injecting scenario so the retry/backoff instrumentation is live.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/bayes_opt.hpp"
#include "core/fault_injection.hpp"
#include "core/grid_search.hpp"
#include "core/optimizer.hpp"
#include "core/random_search.hpp"
#include "core/random_walk.hpp"
#include "obs/trace.hpp"
#include "../core/fake_objective.hpp"

namespace hp::core {
namespace {

using testing::FakeObjective;
using testing::fake_space;

/// Arms the tracer (and flight recorder) for one scope with a small ring,
/// restoring the disabled/empty defaults on exit.
class TracingOn {
 public:
  TracingOn() {
    obs::TraceConfig config;
    config.ring_kb = 256;
    config.flight_recorder = true;
    config.flight_entries = 256;
    obs::tracer().start(config);
  }
  ~TracingOn() {
    obs::tracer().stop();
    obs::tracer().reset();
    obs::flight_recorder().reset();
  }

  TracingOn(const TracingOn&) = delete;
  TracingOn& operator=(const TracingOn&) = delete;
};

HardwareConstraints make_constraints() {
  ConstraintBudgets budgets;
  budgets.power_w = 60.0;
  return HardwareConstraints(
      budgets,
      HardwareModel(ModelForm::Linear, linalg::Vector{100.0}, 0.0, 0.5),
      std::nullopt);
}

std::unique_ptr<Optimizer> make_optimizer(
    const std::string& key, const HyperParameterSpace& space,
    Objective& objective, const HardwareConstraints& constraints,
    const OptimizerOptions& opt) {
  const ConstraintBudgets budgets = constraints.budgets();
  if (key == "rand") {
    return std::make_unique<RandomSearchOptimizer>(space, objective, budgets,
                                                   &constraints, opt);
  }
  if (key == "rand_walk") {
    return std::make_unique<RandomWalkOptimizer>(space, objective, budgets,
                                                 &constraints, opt);
  }
  if (key == "grid") {
    GridSearchOptions grid;
    grid.levels_per_dimension = 3;
    return std::make_unique<GridSearchOptimizer>(space, objective, budgets,
                                                 &constraints, opt, grid);
  }
  BayesOptOptions bo;
  bo.initial_design = 3;
  bo.pool.lattice_points = 120;
  bo.pool.random_points = 60;
  std::unique_ptr<AcquisitionFunction> acquisition;
  if (key == "hw_ieci") {
    acquisition = std::make_unique<HwIeciAcquisition>();
  } else {
    acquisition = std::make_unique<HwCweiAcquisition>();
  }
  return std::make_unique<BayesOptOptimizer>(space, objective, budgets,
                                             &constraints, opt,
                                             std::move(acquisition), bo);
}

/// One fresh-stack faulty run; the scenario mirrors the golden-trace
/// suite (diverging candidates + injected transient faults) so retries,
/// backoffs, and failure records all appear.
std::string run_trace_csv(const std::string& key, std::size_t batch) {
  const HyperParameterSpace space = fake_space();
  const HardwareConstraints constraints = make_constraints();
  FakeObjective inner(space);
  inner.set_diverge_above(0.55);
  FaultSpec faults;
  faults.failure_rate = 0.15;
  faults.seed = 909;
  FaultInjectingObjective faulty(inner, faults);
  OptimizerOptions opt;
  opt.seed = 21;
  opt.batch_size = batch;
  opt.num_threads = 4;
  opt.retry.max_attempts = 3;
  opt.retry.backoff_initial_s = 5.0;
  opt.retry.backoff_jitter = 0.1;
  if (key == "grid") {
    opt.max_samples = 9;
  } else if (key == "hw_ieci" || key == "hw_cwei") {
    opt.max_function_evaluations = 8;
    opt.max_samples = 48;
  } else {
    opt.max_function_evaluations = 12;
    opt.max_samples = 60;
  }
  auto optimizer = make_optimizer(key, space, faulty, constraints, opt);
  const Optimizer::Result result = optimizer->run();
  std::ostringstream os;
  result.trace.write_csv(os);
  return os.str();
}

void expect_tracing_invisible(const std::string& key) {
  for (const std::size_t batch : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE(key + " batch=" + std::to_string(batch));
    const std::string dark = run_trace_csv(key, batch);
    std::string traced;
    {
      TracingOn on;
      traced = run_trace_csv(key, batch);
      // The run must actually have been traced for the comparison to
      // mean anything.
      EXPECT_FALSE(obs::tracer().snapshot().empty());
    }
    EXPECT_EQ(traced, dark);
  }
}

TEST(TraceDeterminismTest, Rand) { expect_tracing_invisible("rand"); }
TEST(TraceDeterminismTest, RandWalk) { expect_tracing_invisible("rand_walk"); }
TEST(TraceDeterminismTest, Grid) { expect_tracing_invisible("grid"); }
TEST(TraceDeterminismTest, HwIeci) { expect_tracing_invisible("hw_ieci"); }
TEST(TraceDeterminismTest, HwCwei) { expect_tracing_invisible("hw_cwei"); }

}  // namespace
}  // namespace hp::core
