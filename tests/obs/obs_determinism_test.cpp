// The observability hard invariant (DESIGN.md §9): logging and metrics are
// pure read-side. A batched run with the logger wide open at trace level,
// a JSONL sink attached, and metrics enabled — on 8 threads — must produce
// a bit-identical trace to a silent single-threaded run. Exercises the
// global logger()/metrics() singletons on purpose (that is what the
// instrumented layers use) and restores them afterwards.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>

#include "core/random_search.hpp"
#include "obs/obs.hpp"
#include "../core/fake_objective.hpp"

namespace hp::core {
namespace {

/// Turns the process-wide observability fully on for one scope: trace-level
/// JSONL sink plus enabled metrics; the destructor restores the silent
/// defaults so neighbouring tests see a dark logger.
class GlobalObsOn {
 public:
  explicit GlobalObsOn(const std::string& jsonl_path)
      : sink_(std::make_shared<obs::JsonlSink>(jsonl_path)) {
    obs::logger().set_level(obs::LogLevel::kTrace);
    obs::logger().add_sink(sink_, obs::LogLevel::kTrace);
    obs::metrics().set_enabled(true);
  }
  ~GlobalObsOn() {
    obs::logger().flush();
    obs::logger().clear_sinks();
    obs::logger().set_level(obs::LogLevel::kTrace);
    obs::metrics().set_enabled(false);
  }

 private:
  std::shared_ptr<obs::JsonlSink> sink_;
};

Optimizer::Result run_batched(std::size_t threads) {
  const HyperParameterSpace space = testing::fake_space();
  ConstraintBudgets budgets;
  budgets.power_w = 60.0;
  testing::FakeObjective objective(space);
  OptimizerOptions opt;
  opt.seed = 11;
  opt.max_function_evaluations = 20;
  opt.batch_size = 5;
  opt.num_threads = threads;
  opt.use_hardware_models = false;
  RandomSearchOptimizer optimizer(space, objective, budgets, nullptr, opt);
  return optimizer.run();
}

void expect_same_trace(const Optimizer::Result& a,
                       const Optimizer::Result& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    const EvaluationRecord& ra = a.trace.records()[i];
    const EvaluationRecord& rb = b.trace.records()[i];
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(ra.config, rb.config);
    EXPECT_EQ(ra.status, rb.status);
    EXPECT_EQ(ra.test_error, rb.test_error);
    EXPECT_EQ(ra.cost_s, rb.cost_s);
    EXPECT_EQ(ra.timestamp_s, rb.timestamp_s);
    EXPECT_EQ(ra.index, rb.index);
  }
}

TEST(ObsDeterminismTest, LoggingOnVsOffLeavesTraceBitIdentical) {
  // Baseline: silent, sequential.
  const auto silent_one = run_batched(1);

  const std::string jsonl = ::testing::TempDir() + "obs_determinism.jsonl";
  std::size_t logged_lines = 0;
  {
    GlobalObsOn obs_on(jsonl);
    const auto loud_eight = run_batched(8);
    expect_same_trace(silent_one, loud_eight);

    const auto loud_one = run_batched(1);
    expect_same_trace(silent_one, loud_one);

    obs::logger().flush();
    std::ifstream is(jsonl);
    std::string line;
    while (std::getline(is, line)) {
      ASSERT_FALSE(line.empty());
      EXPECT_EQ(line.front(), '{');
      EXPECT_EQ(line.back(), '}');
      ++logged_lines;
    }
  }
  // The run actually logged (per-sample trace events at least), and the
  // teardown restored the silent defaults.
  EXPECT_GT(logged_lines, 0u);
  EXPECT_FALSE(obs::logger().enabled(obs::LogLevel::kError));
  EXPECT_FALSE(obs::metrics().enabled());

  // And a silent rerun after the loud ones still matches.
  expect_same_trace(silent_one, run_batched(8));
}

}  // namespace
}  // namespace hp::core
