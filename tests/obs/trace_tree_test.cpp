// Span-tree reconstruction across ThreadPool threads. Work fanned out via
// parallel_for / submit must record its spans under the span that was open
// on the *submitting* thread, and because span ids are pure functions of
// (parent, name, key), the reconstructed (name, id, parent) tree must be
// identical at every worker count — only timings and ring/tid placement
// may differ. Runs under TSan in CI phase 3 with the rest of test_obs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace hp::obs {
namespace {

using SpanKey = std::tuple<std::string, std::uint64_t, std::uint64_t>;

/// Runs a two-level fan-out (round span -> parallel evaluate spans, each
/// with a nested attempt span) on @p num_threads workers and returns the
/// recorded (name, id, parent) set.
std::multiset<SpanKey> run_fanout(std::size_t num_threads) {
  TraceConfig config;
  config.ring_kb = 64;
  tracer().start(config);
  {
    parallel::ThreadPool pool(num_threads);
    ScopedTimer round("tree.round", nullptr, LogLevel::kTrace, 1);
    pool.parallel_for(8, [](std::size_t i) {
      ScopedTimer eval("tree.evaluate", nullptr, LogLevel::kTrace, i);
      ScopedTimer attempt("tree.attempt", nullptr, LogLevel::kTrace, 0);
      tracer().instant("tree.ping", {{"index", i}});
    });
  }
  tracer().stop();
  std::multiset<SpanKey> keys;
  for (const TraceEventView& v : tracer().snapshot()) {
    keys.emplace(v.event.name, v.event.id, v.event.parent);
  }
  tracer().reset();
  return keys;
}

TEST(TraceTreeTest, ParallelForChildrenLinkToSubmittingSpan) {
  TraceConfig config;
  config.ring_kb = 64;
  tracer().start(config);
  std::uint64_t round_id = 0;
  {
    parallel::ThreadPool pool(4);
    ScopedTimer round("tree.round", nullptr, LogLevel::kTrace, 1);
    round_id = tracer().current_span();
    pool.parallel_for(8, [](std::size_t i) {
      ScopedTimer eval("tree.evaluate", nullptr, LogLevel::kTrace, i);
    });
  }
  tracer().stop();
  const std::vector<TraceEventView> events = tracer().snapshot();
  tracer().reset();

  ASSERT_NE(round_id, 0u);
  std::size_t evaluate_count = 0;
  std::set<std::uint64_t> evaluate_ids;
  for (const TraceEventView& v : events) {
    if (std::string(v.event.name) != "tree.evaluate") continue;
    ++evaluate_count;
    evaluate_ids.insert(v.event.id);
    // Every worker-side span hangs off the round span opened on the
    // submitting thread, never off 0 or a worker-local leftover.
    EXPECT_EQ(v.event.parent, round_id);
  }
  EXPECT_EQ(evaluate_count, 8u);
  EXPECT_EQ(evaluate_ids.size(), 8u);  // keyed by index => all distinct
}

TEST(TraceTreeTest, SubmitPropagatesCurrentSpanToWorker) {
  TraceConfig config;
  config.ring_kb = 64;
  tracer().start(config);
  std::uint64_t job_parent = 0;
  std::uint64_t outer_id = 0;
  {
    parallel::ThreadPool pool(2);
    ScopedTimer outer("tree.submit", nullptr, LogLevel::kTrace, 0);
    outer_id = tracer().current_span();
    pool.submit([&job_parent] { job_parent = tracer().current_span(); })
        .get();
  }
  tracer().stop();
  tracer().reset();
  EXPECT_EQ(job_parent, outer_id);
}

TEST(TraceTreeTest, SpanTreeIsInvariantAcrossWorkerCounts) {
  const std::multiset<SpanKey> sequential = run_fanout(1);
  const std::multiset<SpanKey> parallel4 = run_fanout(4);
  // 1 round + 8 evaluate + 8 attempt spans + 8 instants.
  EXPECT_EQ(sequential.size(), 25u);
  EXPECT_EQ(sequential, parallel4);
}

TEST(TraceTreeTest, InstantsAttachToTheWorkerSideSpan) {
  TraceConfig config;
  config.ring_kb = 64;
  tracer().start(config);
  {
    parallel::ThreadPool pool(4);
    ScopedTimer round("tree.round", nullptr, LogLevel::kTrace, 1);
    pool.parallel_for(4, [](std::size_t i) {
      ScopedTimer eval("tree.evaluate", nullptr, LogLevel::kTrace, i);
      tracer().instant("tree.ping", {{"index", i}});
    });
  }
  tracer().stop();
  const std::vector<TraceEventView> events = tracer().snapshot();
  tracer().reset();

  std::set<std::uint64_t> evaluate_ids;
  for (const TraceEventView& v : events) {
    if (std::string(v.event.name) == "tree.evaluate") {
      evaluate_ids.insert(v.event.id);
    }
  }
  std::size_t pings = 0;
  for (const TraceEventView& v : events) {
    if (std::string(v.event.name) != "tree.ping") continue;
    ++pings;
    EXPECT_TRUE(v.event.instant);
    EXPECT_EQ(v.event.id, 0u);
    EXPECT_EQ(evaluate_ids.count(v.event.parent), 1u)
        << "instant not under an evaluate span";
  }
  EXPECT_EQ(pings, 4u);
}

}  // namespace
}  // namespace hp::obs
