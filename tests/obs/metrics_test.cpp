// Unit coverage of the metrics registry: histogram bucket assignment and
// percentile interpolation, counter/gauge semantics, the bucket-bound
// generators, and the JSON export shape (including the regression that
// empty sections serialize as {} rather than null).

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "obs/metrics.hpp"

namespace hp::obs {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  EXPECT_EQ(g.value(), 3.5);
  g.add(-1.5);
  EXPECT_EQ(g.value(), 2.0);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(HistogramTest, RejectsInvalidBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(HistogramTest, BucketAssignmentIsUpperBoundInclusive) {
  // Bucket i counts v <= bounds[i]; the final bucket is the overflow.
  Histogram h({1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0}) h.observe(v);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{2, 2, 2, 1}));
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.min(), 0.5);
  EXPECT_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.sum(), 17.0);
  EXPECT_DOUBLE_EQ(h.mean(), 17.0 / 7.0);
}

TEST(HistogramTest, EmptyHistogramReportsZeroes) {
  Histogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  // 100 observations 0.1 .. 10.0, all inside the first bucket: the p50
  // interpolation lower edge is the tracked min, the upper edge is
  // min(bound, tracked max) = 10.0.
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 1; i <= 100; ++i) h.observe(0.1 * i);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.1 + (10.0 - 0.1) * 0.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.1);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
}

TEST(HistogramTest, PercentileCrossesBuckets) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // bucket 0
  h.observe(1.5);  // bucket 1
  h.observe(3.0);  // bucket 2
  h.observe(8.0);  // overflow
  // target = 0.5 * 4 = 2 observations: reached exactly at the end of
  // bucket 1, whose range is [bounds[0], bounds[1]] = [1, 2].
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 2.0);
  // Quantiles past every finite bound clamp to the tracked max.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 8.0);
  EXPECT_GE(h.percentile(0.99), 4.0);
  // q = 0 lands in the first occupied bucket at its tracked minimum.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.5);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h({1.0, 2.0});
  h.observe(0.5);
  h.observe(5.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{0, 0, 0}));
}

TEST(BucketGeneratorsTest, ExponentialBuckets) {
  EXPECT_EQ(exponential_buckets(1.0, 2.0, 3),
            (std::vector<double>{1.0, 2.0, 4.0}));
  EXPECT_THROW(exponential_buckets(0.0, 2.0, 3), std::invalid_argument);
  EXPECT_THROW(exponential_buckets(1.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(exponential_buckets(1.0, 2.0, 0), std::invalid_argument);
}

TEST(BucketGeneratorsTest, LinearBuckets) {
  EXPECT_EQ(linear_buckets(0.0, 0.5, 4),
            (std::vector<double>{0.5, 1.0, 1.5, 2.0}));
  EXPECT_THROW(linear_buckets(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(linear_buckets(0.0, 1.0, 0), std::invalid_argument);
}

TEST(BucketGeneratorsTest, DurationBucketsCoverMicrosecondsToMinutes) {
  const auto bounds = duration_buckets();
  ASSERT_FALSE(bounds.empty());
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_GT(bounds.back(), 60.0);
}

TEST(MetricsRegistryTest, InstrumentsAreStableByName) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = reg.histogram("h", {1.0, 2.0});
  Histogram& h2 = reg.histogram("h", {9.0});  // bounds ignored after creation
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistryTest, EnabledFlagDefaultsOff) {
  MetricsRegistry reg;
  EXPECT_FALSE(reg.enabled());
  reg.set_enabled(true);
  EXPECT_TRUE(reg.enabled());
  reg.set_enabled(false);
  EXPECT_FALSE(reg.enabled());
}

TEST(MetricsRegistryTest, EmptySectionsSerializeAsObjects) {
  // Regression: auto-vivified members start as null; to_json must still
  // emit {} so downstream JSON parsers see objects for all three sections.
  MetricsRegistry reg;
  EXPECT_EQ(reg.to_json().dump(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(MetricsRegistryTest, JsonExportShape) {
  MetricsRegistry reg;
  reg.counter("opt.samples").add(3);
  reg.gauge("pool.queue_depth").set(2.0);
  Histogram& h = reg.histogram("opt.cost_s", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  const std::string json = reg.to_json().dump();
  EXPECT_NE(json.find("\"opt.samples\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pool.queue_depth\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\":[1,1,0]"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.histogram("h", {1.0}).observe(0.5);
  reg.reset();
  EXPECT_EQ(reg.counter("c").value(), 0u);
  EXPECT_EQ(reg.histogram("h").count(), 0u);
  const std::string json = reg.to_json().dump();
  EXPECT_NE(json.find("\"c\":0"), std::string::npos) << json;
}

}  // namespace
}  // namespace hp::obs
