// Thread-safety of the observability layer under ThreadPool concurrency —
// the suite the ThreadSanitizer phase of tools/run_tests.sh rebuilds.
// Workers log structured events, bump shared instruments, and time spans
// concurrently; totals must come out exact and TSan must stay silent.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>

#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace hp::obs {
namespace {

constexpr std::size_t kTasks = 512;

/// Counts events and checksums their payloads (no storage, no locks).
class CountingSink final : public LogSink {
 public:
  void write(const LogEvent& event) override {
    events_.fetch_add(1, std::memory_order_relaxed);
    for (const LogField& f : event.fields) {
      payload_.fetch_add(
          static_cast<std::uint64_t>(f.value.number_or(0.0)),
          std::memory_order_relaxed);
    }
  }
  [[nodiscard]] std::uint64_t events() const noexcept {
    return events_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t payload() const noexcept {
    return payload_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> payload_{0};
};

TEST(ObsConcurrencyTest, WorkersLogThroughSharedLoggerWithoutLoss) {
  Logger lg;
  auto sink = std::make_shared<CountingSink>();
  lg.add_sink(sink, LogLevel::kTrace);

  parallel::ThreadPool pool(7);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    lg.debug("worker.event", {{"index", JsonValue(static_cast<long long>(i))},
                              {"one", JsonValue(1)}});
  });

  EXPECT_EQ(sink->events(), kTasks);
  EXPECT_EQ(sink->payload(), kTasks * (kTasks - 1) / 2 + kTasks);
}

TEST(ObsConcurrencyTest, SinkRegistrationRacesWithLogging) {
  // add_sink/remove_sink while workers log: no crash, no TSan report, and
  // the permanently attached sink still sees every event.
  Logger lg;
  auto stable = std::make_shared<CountingSink>();
  lg.add_sink(stable, LogLevel::kTrace);

  parallel::ThreadPool pool(7);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    if (i % 16 == 0) {
      auto transient = std::make_shared<CountingSink>();
      lg.add_sink(transient, LogLevel::kTrace);
      lg.remove_sink(transient);
    }
    lg.info("worker.event");
  });

  EXPECT_EQ(stable->events(), kTasks);
}

TEST(ObsConcurrencyTest, SharedInstrumentsCountExactly) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  Counter& hits = reg.counter("test.hits");
  Gauge& depth = reg.gauge("test.depth");
  Histogram& values = reg.histogram("test.values", {0.25, 0.5, 1.0});

  parallel::ThreadPool pool(7);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    hits.add(1);
    depth.add(1.0);
    depth.add(-1.0);
    values.observe(static_cast<double>(i % 4) / 4.0);
  });

  EXPECT_EQ(hits.value(), kTasks);
  EXPECT_EQ(depth.value(), 0.0);
  EXPECT_EQ(values.count(), kTasks);
  // i % 4 / 4 cycles 0, 0.25, 0.5, 0.75: 256 land in the first bucket
  // (<= 0.25), then 128 in (0.25, 0.5], 128 in (0.5, 1.0], 0 overflow.
  EXPECT_EQ(values.bucket_counts(),
            (std::vector<std::uint64_t>{256, 128, 128, 0}));
  EXPECT_EQ(values.min(), 0.0);
  EXPECT_EQ(values.max(), 0.75);
}

TEST(ObsConcurrencyTest, RegistryLookupsRaceSafely) {
  // Fetch-or-create from many workers: everyone must get the same
  // instrument, and the total must be exact.
  MetricsRegistry reg;
  parallel::ThreadPool pool(7);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    reg.counter("shared." + std::to_string(i % 8)).add(1);
  });
  std::uint64_t total = 0;
  for (int k = 0; k < 8; ++k) {
    total += reg.counter("shared." + std::to_string(k)).value();
  }
  EXPECT_EQ(total, kTasks);
}

TEST(ObsConcurrencyTest, ScopedTimersRecordFromWorkers) {
  // ScopedTimer reads the global logger()/metrics() enable flags; leave
  // them untouched (disabled) and drive the histogram directly through a
  // registry-enabled path to keep this test hermetic.
  MetricsRegistry reg;
  reg.set_enabled(true);
  Histogram& spans = reg.histogram("test.span_s", duration_buckets());

  parallel::ThreadPool pool(7);
  pool.parallel_for(kTasks, [&](std::size_t) {
    // The global registry is disabled, so the timer itself stays dark;
    // this mirrors how instrumented layers behave with obs off while the
    // local registry records the span length.
    ScopedTimer dark("test.noop");
    spans.observe(1e-6);
  });

  EXPECT_EQ(spans.count(), kTasks);
}

}  // namespace
}  // namespace hp::obs
