// Logger, sink, and JSON-escaping coverage: level thresholds (global
// floor combined with per-sink minimums), the JSONL sink's line format and
// string escaping, and the stderr pretty-printer's progress-event filter.
// All tests use local Logger instances, never the process-wide singleton.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/log.hpp"

namespace hp::obs {
namespace {

/// Records every event it receives.
class RecordingSink final : public LogSink {
 public:
  void write(const LogEvent& event) override { events.push_back(event); }
  std::vector<LogEvent> events;
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream is(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(LogLevelTest, RoundTripsThroughStrings) {
  for (LogLevel level : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
    const auto parsed = log_level_from_string(to_string(level));
    ASSERT_TRUE(parsed.has_value()) << to_string(level);
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(log_level_from_string("INFO").has_value());
  EXPECT_FALSE(log_level_from_string("verbose").has_value());
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControlCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape("a\bb\fc"), "a\\bb\\fc");
  EXPECT_EQ(json_escape(std::string("a\x01z", 3)), "a\\u0001z");
  // UTF-8 passes through untouched.
  EXPECT_EQ(json_escape("12 \xc2\xb5s"), "12 \xc2\xb5s");
}

TEST(LoggerTest, DisabledWithoutSinks) {
  Logger lg;
  EXPECT_FALSE(lg.enabled(LogLevel::kError));
  // Logging into the void is safe and cheap.
  lg.error("unheard", {{"k", JsonValue(1)}});
}

TEST(LoggerTest, ThresholdFollowsMostVerboseSink) {
  Logger lg;
  auto sink = std::make_shared<RecordingSink>();
  lg.add_sink(sink, LogLevel::kWarn);
  EXPECT_FALSE(lg.enabled(LogLevel::kInfo));
  EXPECT_TRUE(lg.enabled(LogLevel::kWarn));

  auto verbose = std::make_shared<RecordingSink>();
  lg.add_sink(verbose, LogLevel::kDebug);
  EXPECT_TRUE(lg.enabled(LogLevel::kDebug));
  EXPECT_FALSE(lg.enabled(LogLevel::kTrace));

  lg.remove_sink(verbose);
  EXPECT_FALSE(lg.enabled(LogLevel::kDebug));
  lg.clear_sinks();
  EXPECT_FALSE(lg.enabled(LogLevel::kError));
}

TEST(LoggerTest, GlobalFloorOverridesSinkLevels) {
  Logger lg;
  auto sink = std::make_shared<RecordingSink>();
  lg.add_sink(sink, LogLevel::kTrace);
  EXPECT_TRUE(lg.enabled(LogLevel::kTrace));
  lg.set_level(LogLevel::kError);
  EXPECT_FALSE(lg.enabled(LogLevel::kWarn));
  lg.warn("dropped");
  lg.error("kept");
  ASSERT_EQ(sink->events.size(), 1u);
  EXPECT_EQ(sink->events[0].name, "kept");
}

TEST(LoggerTest, PerSinkMinimumLevelsFilterDispatch) {
  Logger lg;
  auto debug_sink = std::make_shared<RecordingSink>();
  auto error_sink = std::make_shared<RecordingSink>();
  lg.add_sink(debug_sink, LogLevel::kDebug);
  lg.add_sink(error_sink, LogLevel::kError);

  lg.trace("below.everyone");
  lg.info("only.debug_sink", {{"n", JsonValue(7)}});
  lg.error("both");

  ASSERT_EQ(debug_sink->events.size(), 2u);
  EXPECT_EQ(debug_sink->events[0].name, "only.debug_sink");
  EXPECT_EQ(debug_sink->events[1].name, "both");
  ASSERT_EQ(error_sink->events.size(), 1u);
  EXPECT_EQ(error_sink->events[0].name, "both");
  // Wall timestamps are monotone non-negative.
  EXPECT_GE(debug_sink->events[0].wall_s, 0.0);
  EXPECT_GE(debug_sink->events[1].wall_s, debug_sink->events[0].wall_s);
}

/// A sink whose write() re-enters the logger's registration API — the
/// pattern that deadlocked when dispatch ran under the registration lock.
class ReentrantSink final : public LogSink {
 public:
  explicit ReentrantSink(Logger* logger) : logger_(logger) {}
  void write(const LogEvent& event) override {
    names.push_back(event.name);
    if (!added_) {
      added_ = true;
      late_sink_ = std::make_shared<RecordingSink>();
      logger_->add_sink(late_sink_, LogLevel::kTrace);
    }
  }
  std::vector<std::string> names;
  std::shared_ptr<RecordingSink> late_sink_;

 private:
  Logger* logger_;
  bool added_ = false;
};

// Regression test for the lock hierarchy surfaced by the thread-safety
// annotations (DESIGN.md §14): dispatch used to run while holding the
// registration mutex, so a sink registering another sink from write()
// self-deadlocked. With dispatch_mutex_ -> mutex_ split, re-entrant
// registration must complete, and the late sink joins from the NEXT
// event (dispatch snapshots the sink list before fan-out).
TEST(LoggerTest, SinkMayRegisterSinksFromWrite) {
  Logger lg;
  auto sink = std::make_shared<ReentrantSink>(&lg);
  lg.add_sink(sink, LogLevel::kTrace);

  lg.info("first");   // triggers the add_sink from inside write()
  lg.info("second");  // first event the late sink can observe

  ASSERT_EQ(sink->names.size(), 2u);
  ASSERT_NE(sink->late_sink_, nullptr);
  ASSERT_EQ(sink->late_sink_->events.size(), 1u);
  EXPECT_EQ(sink->late_sink_->events[0].name, "second");
}

TEST(JsonlSinkTest, ThrowsWhenFileCannotBeOpened) {
  EXPECT_THROW(JsonlSink("/nonexistent-dir/log.jsonl"), std::runtime_error);
}

TEST(JsonlSinkTest, WritesOneEscapedJsonObjectPerLine) {
  const std::string path = ::testing::TempDir() + "obs_jsonl_test.jsonl";
  Logger lg;
  auto sink = std::make_shared<JsonlSink>(path);
  lg.add_sink(sink, LogLevel::kTrace);

  lg.info("optimizer.sample", {{"status", JsonValue("completed")},
                               {"error", JsonValue(0.25)},
                               {"index", JsonValue(3)}});
  lg.warn("note", {{"text", JsonValue("he said \"hi\"\nand left\\")}});
  lg.flush();

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  // Fixed envelope first, fields after, insertion-ordered.
  EXPECT_EQ(lines[0].find("{\"t\":"), 0u) << lines[0];
  EXPECT_NE(lines[0].find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"event\":\"optimizer.sample\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"status\":\"completed\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"error\":0.25"), std::string::npos);
  EXPECT_NE(lines[0].find("\"index\":3"), std::string::npos);
  EXPECT_EQ(lines[0].back(), '}');
  // Quotes, newline, and backslash in a field value stay on one line,
  // escaped.
  EXPECT_NE(lines[1].find("\"text\":\"he said \\\"hi\\\"\\nand left\\\\\""),
            std::string::npos)
      << lines[1];
}

TEST(JsonlSinkTest, TruncatesOnOpen) {
  const std::string path = ::testing::TempDir() + "obs_jsonl_trunc.jsonl";
  {
    Logger lg;
    lg.add_sink(std::make_shared<JsonlSink>(path), LogLevel::kTrace);
    lg.info("first");
    lg.flush();
  }
  {
    Logger lg;
    lg.add_sink(std::make_shared<JsonlSink>(path), LogLevel::kTrace);
    lg.info("second");
    lg.flush();
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"event\":\"second\""), std::string::npos);
}

TEST(StderrSinkTest, PrettyPrintsAndSkipsProgressEvents) {
  std::ostringstream os;
  Logger lg;
  lg.add_sink(std::make_shared<StderrSink>(&os), LogLevel::kTrace);

  lg.info("optimizer.progress", {{"evals", JsonValue(5)}});  // filtered out
  lg.info("bo.refit", {{"n", JsonValue(12)},
                       {"kernel", JsonValue("matern52")},
                       {"note", JsonValue("two words")}});

  const std::string out = os.str();
  EXPECT_EQ(out.find("optimizer.progress"), std::string::npos) << out;
  EXPECT_NE(out.find("bo.refit"), std::string::npos) << out;
  EXPECT_NE(out.find("n=12"), std::string::npos) << out;
  // Bare strings print unquoted unless they contain spaces.
  EXPECT_NE(out.find("kernel=matern52"), std::string::npos) << out;
  EXPECT_NE(out.find("note=\"two words\""), std::string::npos) << out;
  EXPECT_NE(out.find("info"), std::string::npos) << out;
}

TEST(StderrSinkTest, CanOptInToProgressEvents) {
  std::ostringstream os;
  Logger lg;
  lg.add_sink(
      std::make_shared<StderrSink>(&os, /*show_progress_events=*/true),
      LogLevel::kTrace);
  lg.info("optimizer.progress", {{"evals", JsonValue(5)}});
  EXPECT_NE(os.str().find("optimizer.progress"), std::string::npos);
}

}  // namespace
}  // namespace hp::obs
