#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <optional>
#include <vector>

#include "stats/rng.hpp"

namespace hp::linalg {
namespace {

/// Random SPD matrix A = B B^T + n*I (comfortably positive definite).
Matrix random_spd(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.gaussian();
  }
  Matrix a = b * b.transposed();
  a.add_to_diagonal(static_cast<double>(n));
  return a;
}

/// Leading k x k principal submatrix.
Matrix principal(const Matrix& a, std::size_t k) {
  Matrix out(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) out(i, j) = a(i, j);
  }
  return out;
}

/// Border column a(0..n-1, n) of an (n+1) x (n+1) matrix.
Vector border_row(const Matrix& a) {
  const std::size_t n = a.rows() - 1;
  Vector row(n);
  for (std::size_t j = 0; j < n; ++j) row[j] = a(n, j);
  return row;
}

/// Asserts the lower triangles are equal BITWISE — the contract the
/// incremental GP refit relies on (golden traces must not move by an ulp).
void expect_factor_bits_equal(const Matrix& got, const Matrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  for (std::size_t i = 0; i < got.rows(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_EQ(got(i, j), want(i, j)) << "L(" << i << "," << j << ")";
    }
  }
}

TEST(CholeskyUpdate, ExtendedMatchesFullRefactorizationAllDims) {
  // Property sweep: every dimension 1..64, two seeds each. The bordered
  // update must agree with refactorizing from scratch not just to 1e-10 but
  // bit-for-bit (the stronger claim implies the issue's tolerance).
  for (std::size_t n = 1; n <= 64; ++n) {
    for (std::uint64_t seed : {std::uint64_t{7}, std::uint64_t{1000} + n}) {
      const Matrix full = random_spd(n + 1, seed);
      const Cholesky base(principal(full, n));
      ASSERT_EQ(base.jitter_used(), 0.0);
      const auto ext = base.extended(border_row(full), full(n, n));
      ASSERT_TRUE(ext.has_value()) << "n=" << n << " seed=" << seed;
      const Cholesky oneshot(full);
      expect_factor_bits_equal(ext->lower(), oneshot.lower());
      EXPECT_EQ(ext->jitter_used(), 0.0);
    }
  }
}

TEST(CholeskyUpdate, RepeatedExtensionFromDimOneMatchesOneShot) {
  constexpr std::size_t kDim = 48;
  const Matrix full = random_spd(kDim, 11);
  Cholesky chol(principal(full, 1));
  for (std::size_t n = 1; n < kDim; ++n) {
    Vector row(n);
    for (std::size_t j = 0; j < n; ++j) row[j] = full(n, j);
    auto next = chol.extended(row, full(n, n));
    ASSERT_TRUE(next.has_value()) << "extension to n=" << n + 1;
    chol = std::move(*next);
  }
  expect_factor_bits_equal(chol.lower(), Cholesky(full).lower());
}

TEST(CholeskyUpdate, NearSingularParentNeedsJitterAndStillExtends) {
  // The all-ones matrix is PSD but singular: the plain factorization fails
  // at the second pivot, so with_jitter must add jitter. Extension is then
  // a factor of the *jittered* bordered matrix, carrying the jitter along.
  constexpr std::size_t kDim = 6;
  Matrix ones(kDim, kDim, 1.0);
  const auto base = Cholesky::with_jitter(ones);
  ASSERT_TRUE(base.has_value());
  ASSERT_GT(base->jitter_used(), 0.0);
  const auto ext = base->extended(Vector(kDim, 1.0), 2.0);
  ASSERT_TRUE(ext.has_value());
  EXPECT_EQ(ext->jitter_used(), base->jitter_used());
  // Reconstruction check against the bordered jittered matrix.
  Matrix want(kDim + 1, kDim + 1, 1.0);
  for (std::size_t i = 0; i < kDim; ++i) want(i, i) += base->jitter_used();
  want(kDim, kDim) = 2.0;
  const Matrix l = ext->lower();
  EXPECT_LT(max_abs_diff(l * l.transposed(), want), 1e-10);
}

TEST(CholeskyUpdate, ExtendedRejectsIndefiniteBorder) {
  const Matrix a = random_spd(5, 3);
  const Cholesky chol(a);
  // A huge off-diagonal border with a tiny diagonal cannot complete an SPD
  // matrix: the new pivot goes negative and the update must refuse.
  EXPECT_FALSE(chol.extended(Vector(5, 100.0), 1e-6).has_value());
}

TEST(CholeskyUpdate, ExtendedFromOneByOne) {
  Matrix a{{4.0}};
  const Cholesky chol(a);
  const auto ext = chol.extended(Vector{2.0}, 5.0);
  ASSERT_TRUE(ext.has_value());
  const Matrix full{{4.0, 2.0}, {2.0, 5.0}};
  expect_factor_bits_equal(ext->lower(), Cholesky(full).lower());
}

TEST(CholeskyUpdate, TruncatedMatchesPrincipalFactor) {
  const Matrix a = random_spd(32, 21);
  const Cholesky full(a);
  for (std::size_t k : {std::size_t{1}, std::size_t{7}, std::size_t{31},
                        std::size_t{32}}) {
    const Cholesky trunc = full.truncated(k);
    expect_factor_bits_equal(trunc.lower(), Cholesky(principal(a, k)).lower());
    EXPECT_EQ(trunc.jitter_used(), 0.0);
  }
}

TEST(CholeskyUpdate, TruncatedRejectsOutOfRangeSizes) {
  const Cholesky chol(random_spd(4, 5));
  EXPECT_THROW((void)chol.truncated(0), std::invalid_argument);
  EXPECT_THROW((void)chol.truncated(5), std::invalid_argument);
}

TEST(CholeskyUpdate, TruncateThenExtendRoundTrips) {
  // The constant-liar pop/push cycle: drop rows, re-add the same rows, and
  // land on the identical factor bit-for-bit.
  const Matrix a = random_spd(12, 31);
  const Cholesky full(a);
  Cholesky chol = full.truncated(10);
  for (std::size_t n = 10; n < 12; ++n) {
    Vector row(n);
    for (std::size_t j = 0; j < n; ++j) row[j] = a(n, j);
    auto next = chol.extended(row, a(n, n));
    ASSERT_TRUE(next.has_value());
    chol = std::move(*next);
  }
  expect_factor_bits_equal(chol.lower(), full.lower());
}

TEST(CholeskyUpdate, SolveLowerIntoMatchesSolveLower) {
  const Matrix a = random_spd(9, 17);
  const Cholesky chol(a);
  Vector b(9);
  for (std::size_t i = 0; i < 9; ++i) b[i] = 0.5 * static_cast<double>(i) - 2.0;
  const Vector want = chol.solve_lower(b);
  std::vector<double> out(9, -1.0);
  chol.solve_lower_into(b.raw(), out);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(out[i], want[i]);
}

}  // namespace
}  // namespace hp::linalg
