#include "linalg/vector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/contracts.hpp"

namespace hp::linalg {
namespace {

TEST(Vector, DefaultConstructedIsEmpty) {
  Vector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(Vector, SizedConstructorZeroInitializes) {
  Vector v(4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], 0.0);
}

TEST(Vector, FillConstructor) {
  Vector v(3, 2.5);
  EXPECT_EQ(v[0], 2.5);
  EXPECT_EQ(v[2], 2.5);
}

TEST(Vector, InitializerList) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 2.0);
}

TEST(Vector, FromStdVector) {
  Vector v(std::vector<double>{4.0, 5.0});
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 4.0);
}

#if HP_CONTRACTS
TEST(Vector, OutOfRangeAccessViolatesContract) {
  Vector v(2);
  EXPECT_THROW((void)v[2], core::ContractViolation);
  const Vector& cv = v;
  EXPECT_THROW((void)cv[5], core::ContractViolation);
}
#endif

TEST(Vector, AdditionAndSubtraction) {
  Vector a{1.0, 2.0};
  Vector b{3.0, 5.0};
  const Vector sum = a + b;
  EXPECT_EQ(sum[0], 4.0);
  EXPECT_EQ(sum[1], 7.0);
  const Vector diff = b - a;
  EXPECT_EQ(diff[0], 2.0);
  EXPECT_EQ(diff[1], 3.0);
}

#if HP_CONTRACTS
TEST(Vector, MismatchedSizesViolateContract) {
  Vector a{1.0};
  Vector b{1.0, 2.0};
  EXPECT_THROW(a += b, core::ContractViolation);
  EXPECT_THROW((void)dot(a, b), core::ContractViolation);
  EXPECT_THROW((void)hadamard(a, b), core::ContractViolation);
  EXPECT_THROW((void)max_abs_diff(a, b), core::ContractViolation);
}
#endif

TEST(Vector, ScalarMultiplyAndDivide) {
  Vector v{2.0, -4.0};
  const Vector twice = v * 2.0;
  EXPECT_EQ(twice[0], 4.0);
  const Vector half = v / 2.0;
  EXPECT_EQ(half[1], -2.0);
  const Vector scaled = 3.0 * v;
  EXPECT_EQ(scaled[0], 6.0);
}

#if HP_CONTRACTS
TEST(Vector, DivisionByZeroViolatesContract) {
  Vector v{1.0};
  EXPECT_THROW(v /= 0.0, core::ContractViolation);
}
#endif

TEST(Vector, DotProduct) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(Vector, Hadamard) {
  Vector a{1.0, 2.0};
  Vector b{3.0, 4.0};
  const Vector h = hadamard(a, b);
  EXPECT_EQ(h[0], 3.0);
  EXPECT_EQ(h[1], 8.0);
}

TEST(Vector, Norm) {
  Vector v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
}

TEST(Vector, SumMeanMinMax) {
  Vector v{1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(v.sum(), 9.0);
  EXPECT_DOUBLE_EQ(v.mean(), 3.0);
  EXPECT_DOUBLE_EQ(v.min(), 1.0);
  EXPECT_DOUBLE_EQ(v.max(), 6.0);
}

TEST(Vector, EmptyAggregatesThrow) {
  Vector v;
  EXPECT_THROW((void)v.mean(), std::logic_error);
  EXPECT_THROW((void)v.min(), std::logic_error);
  EXPECT_THROW((void)v.max(), std::logic_error);
}

TEST(Vector, MaxAbsDiff) {
  Vector a{1.0, 5.0};
  Vector b{2.0, 3.0};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 2.0);
}

TEST(Vector, StreamOutput) {
  Vector v{1.0, 2.0};
  std::ostringstream os;
  os << v;
  EXPECT_EQ(os.str(), "[1, 2]");
}

TEST(Vector, RangeForIteration) {
  Vector v{1.0, 2.0, 3.0};
  double sum = 0.0;
  for (double x : v) sum += x;
  EXPECT_DOUBLE_EQ(sum, 6.0);
}

}  // namespace
}  // namespace hp::linalg
