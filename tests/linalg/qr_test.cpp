#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace hp::linalg {
namespace {

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.gaussian();
  }
  return a;
}

TEST(HouseholderQr, WideMatrixThrows) {
  EXPECT_THROW(HouseholderQr(Matrix(2, 3)), std::invalid_argument);
}

TEST(HouseholderQr, RIsUpperTriangular) {
  const HouseholderQr qr(random_matrix(6, 3, 1));
  const Matrix r = qr.r();
  for (std::size_t i = 1; i < r.rows(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_EQ(r(i, j), 0.0);
    }
  }
}

TEST(HouseholderQr, SolvesSquareSystemExactly) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  Vector b{5.0, 10.0};
  const HouseholderQr qr(a);
  const Vector x = qr.solve(b);
  EXPECT_LT(max_abs_diff(a * x, b), 1e-12);
}

TEST(HouseholderQr, LeastSquaresResidualOrthogonalToColumns) {
  const Matrix a = random_matrix(8, 3, 2);
  Vector b(8);
  for (std::size_t i = 0; i < 8; ++i) b[i] = std::cos(static_cast<double>(i));
  const HouseholderQr qr(a);
  const Vector x = qr.solve(b);
  const Vector residual = a * x - b;
  // Normal equations: A^T r = 0 at the least-squares solution.
  const Vector atr = transposed_times(a, residual);
  EXPECT_LT(atr.norm(), 1e-10);
}

TEST(HouseholderQr, RecoversExactSolutionOfConsistentTallSystem) {
  const Matrix a = random_matrix(10, 4, 3);
  Vector x_true{1.0, -2.0, 0.5, 3.0};
  const Vector b = a * x_true;
  const HouseholderQr qr(a);
  const Vector x = qr.solve(b);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-10);
}

TEST(HouseholderQr, QtPreservesNorm) {
  const Matrix a = random_matrix(7, 4, 4);
  const HouseholderQr qr(a);
  Vector b(7);
  for (std::size_t i = 0; i < 7; ++i) b[i] = static_cast<double>(i + 1);
  const Vector qtb = qr.apply_qt(b);
  EXPECT_NEAR(qtb.norm(), b.norm(), 1e-10);
}

TEST(HouseholderQr, SingularMatrixThrowsOnSolve) {
  Matrix a{{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};  // rank 1
  const HouseholderQr qr(a);
  EXPECT_THROW((void)qr.solve(Vector{1.0, 2.0, 3.0}), std::runtime_error);
}

TEST(HouseholderQr, ConditionEstimateOrderedByConditioning) {
  // Well-conditioned: identity-ish; ill-conditioned: nearly dependent cols.
  const HouseholderQr good(Matrix{{1.0, 0.0}, {0.0, 1.0}, {0.0, 0.0}});
  Matrix bad_m{{1.0, 1.0}, {1.0, 1.0 + 1e-9}, {0.0, 0.0}};
  const HouseholderQr bad(bad_m);
  EXPECT_GT(good.diagonal_condition_estimate(),
            bad.diagonal_condition_estimate());
}

TEST(HouseholderQr, ApplyQtDimensionMismatchThrows) {
  const HouseholderQr qr(random_matrix(5, 2, 5));
  EXPECT_THROW((void)qr.apply_qt(Vector(4)), std::invalid_argument);
}

class QrShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(QrShapes, NormalEquationsHoldAtSolution) {
  const auto [m, n] = GetParam();
  const Matrix a = random_matrix(m, n, 50 + m + n);
  Vector b(m);
  for (std::size_t i = 0; i < m; ++i) b[i] = std::sin(0.7 * static_cast<double>(i));
  const HouseholderQr qr(a);
  const Vector x = qr.solve(b);
  const Vector atr = transposed_times(a, a * x - b);
  EXPECT_LT(atr.norm(), 1e-8) << m << "x" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{3, 3},
                      std::pair<std::size_t, std::size_t>{5, 2},
                      std::pair<std::size_t, std::size_t>{10, 4},
                      std::pair<std::size_t, std::size_t>{30, 7},
                      std::pair<std::size_t, std::size_t>{100, 13}));

}  // namespace
}  // namespace hp::linalg
