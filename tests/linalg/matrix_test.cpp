#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/contracts.hpp"

namespace hp::linalg {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 0.0);
}

TEST(Matrix, NestedInitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  EXPECT_EQ(i(0, 0), 1.0);
  EXPECT_EQ(i(1, 1), 1.0);
  EXPECT_EQ(i(0, 1), 0.0);
}

TEST(Matrix, Diagonal) {
  const Matrix d = Matrix::diagonal(Vector{2.0, 3.0});
  EXPECT_EQ(d(0, 0), 2.0);
  EXPECT_EQ(d(1, 1), 3.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

#if HP_CONTRACTS
TEST(Matrix, OutOfRangeViolatesContract) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m(2, 0), core::ContractViolation);
  EXPECT_THROW((void)m(0, 2), core::ContractViolation);
}
#endif

TEST(Matrix, RowAndColExtraction) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Vector r = m.row(1);
  EXPECT_EQ(r[0], 3.0);
  EXPECT_EQ(r[1], 4.0);
  const Vector c = m.col(0);
  EXPECT_EQ(c[0], 1.0);
  EXPECT_EQ(c[1], 3.0);
}

TEST(Matrix, SetRowAndCol) {
  Matrix m(2, 2);
  m.set_row(0, Vector{1.0, 2.0});
  m.set_col(1, Vector{5.0, 6.0});
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 5.0);
  EXPECT_EQ(m(1, 1), 6.0);
}

#if HP_CONTRACTS
TEST(Matrix, SetRowSizeMismatchViolatesContract) {
  Matrix m(2, 2);
  EXPECT_THROW(m.set_row(0, Vector{1.0}), core::ContractViolation);
  EXPECT_THROW(m.set_col(0, Vector{1.0, 2.0, 3.0}), core::ContractViolation);
}
#endif

TEST(Matrix, AdditionSubtraction) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  const Matrix sum = a + b;
  EXPECT_EQ(sum(0, 0), 2.0);
  const Matrix diff = a - b;
  EXPECT_EQ(diff(1, 1), 3.0);
}

#if HP_CONTRACTS
TEST(Matrix, ShapeMismatchViolatesContract) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW(a += b, core::ContractViolation);
  EXPECT_THROW((void)max_abs_diff(a, b), core::ContractViolation);
}
#endif

TEST(Matrix, MatrixProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix p = a * b;
  EXPECT_EQ(p(0, 0), 19.0);
  EXPECT_EQ(p(0, 1), 22.0);
  EXPECT_EQ(p(1, 0), 43.0);
  EXPECT_EQ(p(1, 1), 50.0);
}

#if HP_CONTRACTS
TEST(Matrix, ProductInnerDimensionMismatchViolatesContract) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  EXPECT_THROW((void)(a * b), core::ContractViolation);
}
#endif

TEST(Matrix, MatrixVectorProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector y = a * Vector{1.0, 1.0};
  EXPECT_EQ(y[0], 3.0);
  EXPECT_EQ(y[1], 7.0);
}

TEST(Matrix, Transposed) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
}

TEST(Matrix, GramMatchesExplicitProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const Matrix g = gram(a);
  const Matrix expected = a.transposed() * a;
  EXPECT_LT(max_abs_diff(g, expected), 1e-12);
}

TEST(Matrix, TransposedTimesVector) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const Vector y = transposed_times(a, Vector{1.0, 1.0, 1.0});
  EXPECT_EQ(y[0], 9.0);
  EXPECT_EQ(y[1], 12.0);
}

TEST(Matrix, AddToDiagonal) {
  Matrix m(2, 2);
  m.add_to_diagonal(3.0);
  EXPECT_EQ(m(0, 0), 3.0);
  EXPECT_EQ(m(1, 1), 3.0);
  EXPECT_EQ(m(0, 1), 0.0);
}

TEST(Matrix, IsSymmetric) {
  Matrix s{{1.0, 2.0}, {2.0, 3.0}};
  EXPECT_TRUE(s.is_symmetric());
  Matrix ns{{1.0, 2.0}, {2.5, 3.0}};
  EXPECT_FALSE(ns.is_symmetric());
  Matrix rect(2, 3);
  EXPECT_FALSE(rect.is_symmetric());
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(Matrix, MaxAbs) {
  Matrix m{{-7.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.max_abs(), 7.0);
}

}  // namespace
}  // namespace hp::linalg
