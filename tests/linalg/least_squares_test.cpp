#include "linalg/least_squares.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace hp::linalg {
namespace {

TEST(LeastSquares, RecoversExactLinearModel) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}, {3.0, 3.0}, {0.5, 1.5}};
  Vector x_true{2.0, -1.0};
  const Vector b = a * x_true;
  const LeastSquaresFit fit = solve_least_squares(a, b);
  EXPECT_NEAR(fit.coefficients[0], 2.0, 1e-10);
  EXPECT_NEAR(fit.coefficients[1], -1.0, 1e-10);
  EXPECT_NEAR(fit.residual_norm, 0.0, 1e-9);
}

TEST(LeastSquares, PredictMatchesManualDotProduct) {
  LeastSquaresFit fit;
  fit.coefficients = Vector{1.0, 2.0};
  fit.intercept = 0.5;
  EXPECT_DOUBLE_EQ(fit.predict(Vector{3.0, 4.0}), 11.5);
}

TEST(LeastSquares, PredictDimensionMismatchThrows) {
  LeastSquaresFit fit;
  fit.coefficients = Vector{1.0};
  EXPECT_THROW((void)fit.predict(Vector{1.0, 2.0}), std::invalid_argument);
}

TEST(LeastSquares, InterceptRecoversAffineModel) {
  stats::Rng rng(7);
  Matrix a(30, 2);
  Vector b(30);
  for (std::size_t i = 0; i < 30; ++i) {
    a(i, 0) = rng.uniform(0.0, 10.0);
    a(i, 1) = rng.uniform(0.0, 5.0);
    b[i] = 4.0 + 1.5 * a(i, 0) - 2.0 * a(i, 1);
  }
  LeastSquaresOptions opt;
  opt.fit_intercept = true;
  const LeastSquaresFit fit = solve_least_squares(a, b, opt);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[0], 1.5, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], -2.0, 1e-9);
}

TEST(LeastSquares, RidgeShrinksCoefficients) {
  Matrix a{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  Vector b{2.0, 2.0, 4.0};
  const LeastSquaresFit plain = solve_least_squares(a, b);
  LeastSquaresOptions opt;
  opt.ridge = 10.0;
  const LeastSquaresFit ridged = solve_least_squares(a, b, opt);
  EXPECT_LT(std::abs(ridged.coefficients[0]), std::abs(plain.coefficients[0]));
  EXPECT_LT(std::abs(ridged.coefficients[1]), std::abs(plain.coefficients[1]));
}

TEST(LeastSquares, RidgeAllowsUnderdeterminedSystem) {
  Matrix a{{1.0, 2.0, 3.0}};  // 1 equation, 3 unknowns
  Vector b{6.0};
  LeastSquaresOptions opt;
  opt.ridge = 1e-6;
  const LeastSquaresFit fit = solve_least_squares(a, b, opt);
  EXPECT_NEAR(fit.predict(Vector{1.0, 2.0, 3.0}), 6.0, 1e-3);
}

TEST(LeastSquares, UnderdeterminedWithoutRidgeThrows) {
  Matrix a{{1.0, 2.0, 3.0}};
  Vector b{6.0};
  EXPECT_THROW((void)solve_least_squares(a, b), std::invalid_argument);
}

TEST(LeastSquares, EmptyDesignThrows) {
  EXPECT_THROW((void)solve_least_squares(Matrix(), Vector()),
               std::invalid_argument);
}

TEST(LeastSquares, RowCountMismatchThrows) {
  EXPECT_THROW((void)solve_least_squares(Matrix(3, 2), Vector(4)),
               std::invalid_argument);
}

TEST(LeastSquares, NonnegativeClampsNegativeCoefficient) {
  // b depends negatively on the second column; NNLS must clamp it to 0.
  stats::Rng rng(9);
  Matrix a(40, 2);
  Vector b(40);
  for (std::size_t i = 0; i < 40; ++i) {
    a(i, 0) = rng.uniform(1.0, 5.0);
    a(i, 1) = rng.uniform(1.0, 5.0);
    b[i] = 3.0 * a(i, 0) - 0.8 * a(i, 1);
  }
  LeastSquaresOptions opt;
  opt.nonnegative = true;
  const LeastSquaresFit fit = solve_least_squares(a, b, opt);
  EXPECT_GE(fit.coefficients[0], 0.0);
  EXPECT_GE(fit.coefficients[1], 0.0);
  EXPECT_EQ(fit.coefficients[1], 0.0);
}

TEST(LeastSquares, NonnegativeKeepsAllPositiveSolution) {
  Matrix a{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  Vector b{1.0, 2.0, 3.0};
  LeastSquaresOptions opt;
  opt.nonnegative = true;
  const LeastSquaresFit fit = solve_least_squares(a, b, opt);
  EXPECT_NEAR(fit.coefficients[0], 1.0, 1e-10);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-10);
}

TEST(LeastSquares, NonnegativeAllClampedFallsBackToIntercept) {
  // Target decreases in every feature: all coefficients clamp to zero and
  // only the intercept survives.
  Matrix a{{1.0}, {2.0}, {3.0}, {4.0}};
  Vector b{4.0, 3.0, 2.0, 1.0};
  LeastSquaresOptions opt;
  opt.nonnegative = true;
  opt.fit_intercept = true;
  const LeastSquaresFit fit = solve_least_squares(a, b, opt);
  EXPECT_EQ(fit.coefficients[0], 0.0);
  EXPECT_NEAR(fit.intercept, 2.5, 1e-10);
}

TEST(LeastSquares, ResidualNormMatchesManualComputation) {
  Matrix a{{1.0}, {1.0}};
  Vector b{1.0, 3.0};
  const LeastSquaresFit fit = solve_least_squares(a, b);
  // x = 2, residuals (1, -1), norm sqrt(2).
  EXPECT_NEAR(fit.residual_norm, std::sqrt(2.0), 1e-12);
}

TEST(LeastSquares, NoisyRecoveryIsClose) {
  stats::Rng rng(11);
  Matrix a(200, 3);
  Vector b(200);
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = rng.uniform(0.0, 1.0);
    b[i] = 1.0 * a(i, 0) + 2.0 * a(i, 1) + 3.0 * a(i, 2) +
           rng.gaussian(0.0, 0.01);
  }
  const LeastSquaresFit fit = solve_least_squares(a, b);
  EXPECT_NEAR(fit.coefficients[0], 1.0, 0.05);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 0.05);
  EXPECT_NEAR(fit.coefficients[2], 3.0, 0.05);
}

}  // namespace
}  // namespace hp::linalg
