#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include "core/contracts.hpp"

#include <cmath>

#include "stats/rng.hpp"

namespace hp::linalg {
namespace {

/// Random SPD matrix A = B B^T + n*I.
Matrix random_spd(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.gaussian();
  }
  Matrix a = b * b.transposed();
  a.add_to_diagonal(static_cast<double>(n));
  return a;
}

TEST(Cholesky, FactorReconstructsMatrix) {
  const Matrix a = random_spd(5, 1);
  const Cholesky chol(a);
  const Matrix l = chol.lower();
  EXPECT_LT(max_abs_diff(l * l.transposed(), a), 1e-9);
}

TEST(Cholesky, SolveMatchesDirectCheck) {
  const Matrix a = random_spd(6, 2);
  Vector b(6);
  for (std::size_t i = 0; i < 6; ++i) b[i] = static_cast<double>(i) - 2.0;
  const Cholesky chol(a);
  const Vector x = chol.solve(b);
  EXPECT_LT(max_abs_diff(a * x, b), 1e-8);
}

TEST(Cholesky, LowerUpperSolvesCompose) {
  const Matrix a = random_spd(4, 3);
  const Cholesky chol(a);
  Vector b{1.0, -1.0, 2.0, 0.5};
  const Vector y = chol.solve_lower(b);
  const Vector x = chol.solve_upper(y);
  EXPECT_LT(max_abs_diff(a * x, b), 1e-9);
}

TEST(Cholesky, LogDetMatchesTwoByTwo) {
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};  // det = 8
  const Cholesky chol(a);
  EXPECT_NEAR(chol.log_det(), std::log(8.0), 1e-12);
}

TEST(Cholesky, InverseTimesMatrixIsIdentity) {
  const Matrix a = random_spd(4, 4);
  const Cholesky chol(a);
  const Matrix inv = chol.inverse();
  EXPECT_LT(max_abs_diff(a * inv, Matrix::identity(4)), 1e-8);
}

TEST(Cholesky, NonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(Cholesky{a}, std::invalid_argument);
}

TEST(Cholesky, NonSymmetricThrows) {
  Matrix a{{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_THROW(Cholesky{a}, std::invalid_argument);
}

TEST(Cholesky, IndefiniteThrows) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(Cholesky{a}, std::runtime_error);
}

TEST(Cholesky, WithJitterSucceedsOnSingularMatrix) {
  // Rank-1 PSD matrix: plain factorization fails, jitter succeeds.
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  const auto chol = Cholesky::with_jitter(a);
  ASSERT_TRUE(chol.has_value());
  EXPECT_GT(chol->jitter_used(), 0.0);
}

TEST(Cholesky, WithJitterNoJitterForGoodMatrix) {
  const auto chol = Cholesky::with_jitter(random_spd(3, 5));
  ASSERT_TRUE(chol.has_value());
  EXPECT_EQ(chol->jitter_used(), 0.0);
}

TEST(Cholesky, WithJitterGivesUpOnStronglyIndefinite) {
  Matrix a{{1.0, 0.0}, {0.0, -1e12}};
  const auto chol = Cholesky::with_jitter(a, 1e-10, 3);
  EXPECT_FALSE(chol.has_value());
}

#if HP_CONTRACTS
TEST(Cholesky, SolveDimensionMismatchViolatesContract) {
  const Cholesky chol(random_spd(3, 6));
  EXPECT_THROW((void)chol.solve(Vector(4)), core::ContractViolation);
}
#endif

class CholeskySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizes, RoundTripAtVariousSizes) {
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, 100 + n);
  const Cholesky chol(a);
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = std::sin(static_cast<double>(i));
  const Vector x = chol.solve(b);
  EXPECT_LT(max_abs_diff(a * x, b), 1e-7) << "n=" << n;
  const Matrix l = chol.lower();
  EXPECT_LT(max_abs_diff(l * l.transposed(), a), 1e-7) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizes,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 40, 80));

}  // namespace
}  // namespace hp::linalg
