// Integration tests: the full HyperPower flow (Figure 2) — profile, train
// hardware models, optimize under budgets — against the analytic testbed.

#include "core/framework.hpp"

#include <gtest/gtest.h>

#include "testbed/testbed_objective.hpp"

namespace hp::core {
namespace {

class FrameworkTest : public ::testing::Test {
 protected:
  FrameworkTest()
      : problem_(mnist_problem()),
        objective_(problem_, testbed::mnist_landscape(), hw::gtx1070(),
                   testbed::calibrated_options("mnist", hw::gtx1070())) {
    budgets_.power_w = 85.0;
    budgets_.memory_mb = 680.0;
  }

  /// Trains the framework's hardware models from a fresh profiling pass.
  void train_models(HyperPowerFramework& fw) {
    hw::GpuSimulator sim(hw::gtx1070(), 33);
    hw::InferenceProfiler profiler(sim);
    const std::size_t n = fw.train_hardware_models(profiler, 60, 21);
    ASSERT_GE(n, 50u);
  }

  BenchmarkProblem problem_;
  testbed::TestbedObjective objective_;
  ConstraintBudgets budgets_;
};

TEST_F(FrameworkTest, TrainedModelsMeetPaperAccuracy) {
  HyperPowerFramework fw(problem_, objective_, budgets_);
  train_models(fw);
  ASSERT_TRUE(fw.power_model().has_value());
  EXPECT_LT(fw.power_model()->cv.rmspe, 7.0);  // Table 1: always < 7%
  ASSERT_TRUE(fw.memory_model().has_value());
  EXPECT_LT(fw.memory_model()->cv.rmspe, 7.0);
}

TEST_F(FrameworkTest, HyperPowerModeRequiresModels) {
  HyperPowerFramework fw(problem_, objective_, budgets_);
  FrameworkOptions opt;
  opt.hyperpower_mode = true;
  opt.optimizer.max_function_evaluations = 2;
  EXPECT_THROW((void)fw.optimize(opt), std::logic_error);
}

TEST_F(FrameworkTest, DefaultModeRunsWithoutModels) {
  HyperPowerFramework fw(problem_, objective_, budgets_);
  FrameworkOptions opt;
  opt.method = Method::Rand;
  opt.hyperpower_mode = false;
  opt.optimizer.max_function_evaluations = 4;
  opt.optimizer.seed = 5;
  const auto result = fw.optimize(opt);
  EXPECT_EQ(result.run.trace.function_evaluations(), 4u);
  EXPECT_EQ(result.method_name, "Rand");
  EXPECT_FALSE(result.hyperpower_mode);
}

TEST_F(FrameworkTest, AllFourMethodsRunInBothModes) {
  HyperPowerFramework fw(problem_, objective_, budgets_);
  train_models(fw);
  for (Method m : {Method::Rand, Method::RandWalk, Method::HwCwei,
                   Method::HwIeci}) {
    for (bool hyperpower : {false, true}) {
      objective_.virtual_clock().reset();
      FrameworkOptions opt;
      opt.method = m;
      opt.hyperpower_mode = hyperpower;
      opt.optimizer.max_function_evaluations = 3;
      opt.optimizer.max_samples = 300;
      opt.optimizer.seed = 7;
      const auto result = fw.optimize(opt);
      EXPECT_EQ(result.run.trace.function_evaluations(), 3u)
          << to_string(m) << " hyperpower=" << hyperpower;
      EXPECT_EQ(result.method_name, to_string(m));
    }
  }
}

TEST_F(FrameworkTest, HyperPowerRandQueriesManyMoreSamplesPerHour) {
  // Table 4's headline effect: within the same time budget, the
  // constraint-aware Rand queries far more samples than exhaustive Rand.
  HyperPowerFramework fw(problem_, objective_, budgets_);
  train_models(fw);

  FrameworkOptions def;
  def.method = Method::Rand;
  def.hyperpower_mode = false;
  def.optimizer.max_runtime_s = 3600.0;
  def.optimizer.seed = 11;
  objective_.virtual_clock().reset();
  const auto default_run = fw.optimize(def);

  FrameworkOptions hp_mode = def;
  hp_mode.hyperpower_mode = true;
  objective_.virtual_clock().reset();
  const auto hyper_run = fw.optimize(hp_mode);

  EXPECT_GT(hyper_run.run.trace.size(), 3 * default_run.run.trace.size());
  // And the best error found is at least as good (usually much better).
  const double def_best = default_run.run.best
                              ? default_run.run.best->test_error
                              : 1.0;
  const double hp_best =
      hyper_run.run.best ? hyper_run.run.best->test_error : 1.0;
  EXPECT_LE(hp_best, def_best + 0.01);
}

TEST_F(FrameworkTest, HwIeciRarelyTrainsViolatingSamples) {
  HyperPowerFramework fw(problem_, objective_, budgets_);
  train_models(fw);
  FrameworkOptions opt;
  opt.method = Method::HwIeci;
  opt.hyperpower_mode = true;
  opt.optimizer.max_function_evaluations = 15;
  opt.optimizer.max_samples = 2000;
  opt.optimizer.seed = 13;
  objective_.virtual_clock().reset();
  const auto result = fw.optimize(opt);
  // The paper reports zero constraint-violating samples for HW-IECI; with
  // a ~3% RMSPE model a rare borderline miss is possible but must stay
  // marginal.
  EXPECT_LE(result.run.trace.measured_violation_count(), 2u);
}

TEST_F(FrameworkTest, SetHardwareModelsInstallsExternalModels) {
  HyperPowerFramework fw(problem_, objective_, budgets_);
  EXPECT_FALSE(fw.has_hardware_models());
  fw.set_hardware_models(
      HardwareModel(ModelForm::Linear, linalg::Vector{1.0, 1.0, 1.0, 0.01},
                    30.0, 2.0),
      std::nullopt);
  EXPECT_TRUE(fw.has_hardware_models());
  FrameworkOptions opt;
  opt.method = Method::Rand;
  opt.hyperpower_mode = true;
  opt.optimizer.max_function_evaluations = 2;
  opt.optimizer.max_samples = 500;
  opt.optimizer.seed = 3;
  EXPECT_NO_THROW((void)fw.optimize(opt));
}

TEST_F(FrameworkTest, MethodNamesAndKinds) {
  EXPECT_EQ(to_string(Method::Rand), "Rand");
  EXPECT_EQ(to_string(Method::RandWalk), "Rand-Walk");
  EXPECT_EQ(to_string(Method::HwCwei), "HW-CWEI");
  EXPECT_EQ(to_string(Method::HwIeci), "HW-IECI");
  EXPECT_FALSE(is_bayesian(Method::Rand));
  EXPECT_FALSE(is_bayesian(Method::RandWalk));
  EXPECT_TRUE(is_bayesian(Method::HwCwei));
  EXPECT_TRUE(is_bayesian(Method::HwIeci));
}

TEST_F(FrameworkTest, ProfilingRequiresEnoughSamples) {
  HyperPowerFramework fw(problem_, objective_, budgets_);
  hw::GpuSimulator sim(hw::gtx1070(), 1);
  hw::InferenceProfiler profiler(sim);
  EXPECT_THROW((void)fw.train_hardware_models(profiler, 5, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace hp::core
