// End-to-end tests through the REAL training path: tiny problems, actual
// CNN training on synthetic data, simulated NVML measurement — the whole
// HyperPower loop with no analytic shortcuts.

#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "testbed/nn_objective.hpp"

namespace hp::testbed {
namespace {

NnObjectiveOptions fast_options(std::uint64_t seed = 1) {
  NnObjectiveOptions opt;
  opt.data.train_size = 100;
  opt.data.test_size = 60;
  opt.data.image_size = 12;
  opt.data.seed = 9;
  opt.epochs = 3;
  opt.batch_size = 25;
  opt.seed = seed;
  return opt;
}

TEST(NnObjective, RejectsMismatchedInputShape) {
  const auto problem = core::mnist_problem();  // expects 28x28
  EXPECT_THROW(NnTrainingObjective(problem, SyntheticDataset::Mnist,
                                   hw::gtx1070(), fast_options()),
               std::invalid_argument);
}

TEST(NnObjective, TrainsARealNetworkAndMeasuresHardware) {
  const auto problem = core::tiny_mnist_problem();
  NnTrainingObjective objective(problem, SyntheticDataset::Mnist,
                                hw::gtx1070(), fast_options());
  const core::Configuration config{8, 3, 2, 32, 0.05, 0.9};
  const auto r = objective.evaluate(config, nullptr);
  EXPECT_EQ(r.status, core::EvaluationStatus::Completed);
  EXPECT_LT(r.test_error, 0.9);  // learned something beyond chance
  ASSERT_TRUE(r.measured_power_w.has_value());
  EXPECT_GT(*r.measured_power_w, 30.0);
  ASSERT_TRUE(r.measured_memory_mb.has_value());
  EXPECT_GT(r.cost_s, 0.0);
}

TEST(NnObjective, EarlyTerminationStopsHopelessTraining) {
  const auto problem = core::tiny_mnist_problem();
  NnTrainingObjective objective(problem, SyntheticDataset::Mnist,
                                hw::gtx1070(), fast_options());
  // Absurd learning rate diverges immediately.
  const core::Configuration config{8, 3, 2, 32, 0.1, 0.95};
  const core::EarlyTerminationRule rule(1, 0.9, 0.05);
  const auto r = objective.evaluate(config, &rule);
  // Either the trainer detects non-finite weights or the rule fires; both
  // must map to EarlyTerminated under an active rule.
  if (r.status == core::EvaluationStatus::EarlyTerminated) {
    EXPECT_FALSE(r.measured_power_w.has_value());
  } else {
    // Converged despite the aggressive rate — acceptable but must be real.
    EXPECT_EQ(r.status, core::EvaluationStatus::Completed);
  }
}

TEST(NnObjective, FullHyperPowerLoopOnRealTraining) {
  // The complete Figure-2 flow with genuine training: profile, fit models,
  // run constrained random search.
  const auto problem = core::tiny_mnist_problem();
  NnTrainingObjective objective(problem, SyntheticDataset::Mnist,
                                hw::gtx1070(), fast_options(3));

  core::ConstraintBudgets budgets;
  budgets.power_w = 60.0;  // tight for the tiny space
  core::HyperPowerFramework fw(problem, objective, budgets);
  hw::GpuSimulator profiling_sim(hw::gtx1070(), 55);
  hw::InferenceProfiler profiler(profiling_sim);
  const std::size_t profiled = fw.train_hardware_models(profiler, 40, 77);
  EXPECT_GE(profiled, 30u);

  core::FrameworkOptions opt;
  opt.method = core::Method::Rand;
  opt.hyperpower_mode = true;
  opt.optimizer.max_function_evaluations = 5;
  opt.optimizer.max_samples = 200;
  opt.optimizer.seed = 4;
  const auto result = fw.optimize(opt);
  EXPECT_EQ(result.run.trace.function_evaluations(), 5u);
  // Trained samples respect the budget by prediction; measured violations
  // should be rare.
  EXPECT_LE(result.run.trace.measured_violation_count(), 2u);
  if (result.run.best) {
    EXPECT_LE(*result.run.best->measured_power_w, budgets.power_w.value());
  }
}

TEST(NnObjective, CifarVariantRuns) {
  const auto problem = core::tiny_cifar_problem();
  NnObjectiveOptions opt = fast_options(5);
  opt.data.image_size = 16;
  NnTrainingObjective objective(problem, SyntheticDataset::Cifar,
                                hw::tegra_tx1(), opt);
  const core::Configuration config{8, 3, 2, 8, 2, 2, 32, 0.03, 0.85, 0.001};
  const auto r = objective.evaluate(config, nullptr);
  EXPECT_EQ(r.status, core::EvaluationStatus::Completed);
  ASSERT_TRUE(r.measured_power_w.has_value());
  EXPECT_FALSE(r.measured_memory_mb.has_value());  // Tegra footnote 1
}

TEST(NnObjective, VirtualClockChargedWhenEnabled) {
  const auto problem = core::tiny_mnist_problem();
  NnTrainingObjective objective(problem, SyntheticDataset::Mnist,
                                hw::gtx1070(), fast_options(6));
  const double before = objective.clock().now_s();
  const core::Configuration config{6, 2, 2, 16, 0.02, 0.85};
  const auto r = objective.evaluate(config, nullptr);
  EXPECT_NEAR(objective.clock().now_s() - before, r.cost_s, 1e-9);
}

}  // namespace
}  // namespace hp::testbed
