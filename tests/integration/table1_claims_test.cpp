// Encodes the paper's headline model claims (Table 1 / Section 5) as a
// parameterized sweep: for every device x dataset pair the linear power
// model — and the memory model where the platform has a counter — must
// reach RMSPE below the paper's 7% bound, under 10-fold cross validation
// on offline profiling samples.

#include <gtest/gtest.h>

#include "core/hw_models.hpp"
#include "core/spaces.hpp"
#include "hw/profiler.hpp"

namespace hp::core {
namespace {

struct PairCase {
  const char* problem;
  const char* device;
  bool expect_memory_model;
};

std::string case_name(const ::testing::TestParamInfo<PairCase>& info) {
  std::string name = std::string(info.param.problem) + "_" + info.param.device;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class Table1Claims : public ::testing::TestWithParam<PairCase> {
 protected:
  static std::vector<hw::ProfileSample> profile(const BenchmarkProblem& problem,
                                                const hw::DeviceSpec& device) {
    hw::GpuSimulator simulator(device, 91);
    hw::InferenceProfiler profiler(simulator);
    stats::Rng rng(91);
    std::vector<nn::CnnSpec> specs;
    std::size_t attempts = 0;
    while (specs.size() < 100 && attempts < 2000) {
      ++attempts;
      const auto config = problem.space().sample(rng);
      const auto spec = problem.to_cnn_spec(config);
      if (nn::is_feasible(spec)) specs.push_back(spec);
    }
    return profiler.profile_all(specs);
  }
};

TEST_P(Table1Claims, LinearModelsMeetTheSevenPercentBound) {
  const PairCase param = GetParam();
  const BenchmarkProblem problem = std::string(param.problem) == "mnist"
                                       ? mnist_problem()
                                       : cifar10_problem();
  const auto device = hw::find_device(param.device);
  ASSERT_TRUE(device.has_value());
  const auto samples = profile(problem, *device);
  ASSERT_GE(samples.size(), 80u);

  const auto power = train_power_model(samples);
  EXPECT_LT(power.cv.rmspe, 7.0) << "power model";
  EXPECT_GT(power.cv.r_squared, 0.3) << "power model explains variance";

  const auto memory = train_memory_model(samples);
  EXPECT_EQ(memory.has_value(), param.expect_memory_model);
  if (memory) {
    EXPECT_LT(memory->cv.rmspe, 7.5) << "memory model";
  }
}

TEST_P(Table1Claims, PowerIsIndependentOfTrainingState) {
  // The core insight (Fig. 3 left): the same architecture measured twice
  // (as at different training checkpoints) draws the same power up to
  // sensor noise.
  const PairCase param = GetParam();
  const BenchmarkProblem problem = std::string(param.problem) == "mnist"
                                       ? mnist_problem()
                                       : cifar10_problem();
  const auto device = hw::find_device(param.device);
  ASSERT_TRUE(device.has_value());
  hw::GpuSimulator simulator(*device, 17);
  hw::InferenceProfiler profiler(simulator);
  stats::Rng rng(17);
  core::Configuration config = problem.space().sample(rng);
  while (!nn::is_feasible(problem.to_cnn_spec(config))) {
    config = problem.space().sample(rng);
  }
  const auto spec = problem.to_cnn_spec(config);
  const auto first = profiler.profile(spec);
  const auto second = profiler.profile(spec);
  EXPECT_NEAR(second.power_w, first.power_w, first.power_w * 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, Table1Claims,
    ::testing::Values(PairCase{"mnist", "GTX 1070", true},
                      PairCase{"cifar10", "GTX 1070", true},
                      PairCase{"mnist", "Tegra TX1", false},
                      PairCase{"cifar10", "Tegra TX1", false},
                      PairCase{"mnist", "GTX 1080 Ti", true},
                      PairCase{"cifar10", "Jetson Nano", false}),
    case_name);

}  // namespace
}  // namespace hp::core
