// Acceptance tests for the fault-tolerant evaluation pipeline (ISSUE 4):
//   1. a run with injected transient faults and periodic sensor failures
//      completes, recording every candidate exactly once;
//   2. a run killed mid-way and resumed from its journal produces a
//      bit-identical final trace (and journal) vs an uninterrupted run.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/acquisition.hpp"
#include "core/bayes_opt.hpp"
#include "core/fault_injection.hpp"
#include "core/hw_models.hpp"
#include "core/optimizer.hpp"
#include "core/random_search.hpp"
#include "core/spaces.hpp"
#include "core/trace_io.hpp"
#include "hw/device.hpp"
#include "testbed/testbed_objective.hpp"

#include "../core/fake_objective.hpp"

namespace hp::core {
namespace {

using testing::FakeObjective;
using testing::fake_space;

std::string trace_csv(const RunTrace& trace) {
  std::ostringstream os;
  trace.write_csv(os);
  return os.str();
}

std::string file_contents(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

RetryPolicy fast_retries() {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_initial_s = 10.0;
  policy.backoff_jitter = 0.1;
  return policy;
}

TEST(FaultTolerance, FaultyTestbedRunRecordsEveryCandidateExactlyOnce) {
  // The full acceptance scenario: 20% of evaluation attempts throw
  // injected transient faults, the power sensor glitches periodically, and
  // the memory counter occasionally fails — yet the run completes with a
  // gapless trace.
  BenchmarkProblem problem = mnist_problem();
  testbed::TestbedOptions testbed_options =
      testbed::calibrated_options("mnist", hw::gtx1070());
  testbed_options.sensor_faults.failure_rate = 0.15;
  testbed_options.sensor_faults.fail_memory = true;
  testbed_options.sensor_faults.seed = 321;
  testbed_options.sensor_fallback_after = 3;
  testbed::TestbedObjective objective(problem, testbed::mnist_landscape(),
                                      hw::gtx1070(), testbed_options);
  // Fallback predictors (mnist z is 4-dimensional); accuracy is irrelevant
  // here, only that degraded samples get *some* prediction instead of
  // dying.
  const HardwareModel power_model(ModelForm::Linear,
                                  linalg::Vector{0.5, 1.0, -1.0, 0.02}, 40.0,
                                  2.0);
  const HardwareModel memory_model(ModelForm::Linear,
                                   linalg::Vector{2.0, 5.0, -3.0, 0.5}, 500.0,
                                   20.0);
  objective.set_fallback_models(&power_model, &memory_model);

  FaultSpec faults;
  faults.failure_rate = 0.2;
  faults.seed = 2024;
  FaultInjectingObjective faulty(objective, faults);

  OptimizerOptions options;
  options.max_function_evaluations = 25;
  options.seed = 5;
  options.retry = fast_retries();
  RandomSearchOptimizer optimizer(problem.space(), faulty, {}, nullptr,
                                  options);
  const Optimizer::Result result = optimizer.run();

  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.trace.function_evaluations(), 25u);
  ASSERT_TRUE(result.best.has_value());
  // Every candidate exactly once, indices gapless and ordered.
  std::set<std::size_t> indices;
  for (const auto& record : result.trace.records()) {
    indices.insert(record.index);
  }
  EXPECT_EQ(indices.size(), result.trace.size());
  EXPECT_EQ(*indices.rbegin(), result.trace.size() - 1);
  // The faults actually fired and were absorbed.
  EXPECT_GT(faulty.injected_failures(), 0u);
  EXPECT_GT(result.trace.total_retries(), 0u);
  // Timestamps stay monotone through retries and failures.
  double prev = -1.0;
  for (const auto& record : result.trace.records()) {
    EXPECT_GT(record.timestamp_s, prev) << "sample " << record.index;
    prev = record.timestamp_s;
  }
}

TEST(FaultTolerance, PersistentlyBrokenEnvironmentAbortsInsteadOfSpinning) {
  auto space = fake_space();
  FakeObjective inner(space);
  FaultSpec faults;
  faults.failure_rate = 1.0;
  faults.transient_weight = 0.0;
  faults.persistent_weight = 1.0;
  FaultInjectingObjective faulty(inner, faults);
  OptimizerOptions options;
  options.max_function_evaluations = 50;
  options.seed = 6;
  options.retry.max_consecutive_failed_samples = 5;
  RandomSearchOptimizer optimizer(space, faulty, {}, nullptr, options);
  const Optimizer::Result result = optimizer.run();
  EXPECT_TRUE(result.aborted);
  EXPECT_FALSE(result.abort_reason.empty());
  EXPECT_FALSE(result.best.has_value());
  EXPECT_EQ(result.trace.failed_count(), 5u);
}

/// Runs the optimizer twice: once uninterrupted, once "crashed" after
/// @p keep completed records and resumed from the journal. Both traces and
/// both final journals must be bit-identical.
template <typename MakeOptimizer>
void expect_resume_bit_identical(const HyperParameterSpace& space,
                                 const MakeOptimizer& make_optimizer,
                                 OptimizerOptions options, std::size_t keep,
                                 const std::string& tag) {
  const std::string full_journal = temp_path("journal_full_" + tag + ".hpj");
  const std::string resumed_journal =
      temp_path("journal_resumed_" + tag + ".hpj");

  FaultSpec faults;
  faults.failure_rate = 0.2;
  faults.seed = 77;

  // Uninterrupted reference run (journaled, with live fault injection).
  options.journal_path = full_journal;
  FakeObjective reference_inner(space);
  FaultInjectingObjective reference_faulty(reference_inner, faults);
  auto reference = make_optimizer(reference_faulty, options);
  const Optimizer::Result uninterrupted = reference->run();
  ASSERT_GT(uninterrupted.trace.size(), keep);

  // "Crash": keep only the first @p keep journaled records.
  JournalLoadResult crashed = EvalJournal::load(full_journal);
  ASSERT_GE(crashed.records.size(), keep);
  crashed.records.resize(keep);

  // Fresh objective + optimizer, resumed from the truncated journal.
  options.journal_path = resumed_journal;
  FakeObjective resumed_inner(space);
  FaultInjectingObjective resumed_faulty(resumed_inner, faults);
  auto fresh = make_optimizer(resumed_faulty, options);
  const Optimizer::Result resumed = fresh->resume(crashed.records);

  EXPECT_EQ(trace_csv(resumed.trace), trace_csv(uninterrupted.trace))
      << tag << ": resumed trace differs from uninterrupted run";
  ASSERT_TRUE(uninterrupted.best.has_value());
  ASSERT_TRUE(resumed.best.has_value());
  EXPECT_EQ(resumed.best->config, uninterrupted.best->config);
  EXPECT_EQ(resumed.best->test_error, uninterrupted.best->test_error);
  // The rebuilt journal is byte-identical too: a second crash loses
  // nothing.
  EXPECT_EQ(file_contents(resumed_journal), file_contents(full_journal))
      << tag << ": resumed journal differs";
  std::remove(full_journal.c_str());
  std::remove(resumed_journal.c_str());
}

OptimizerOptions base_options(std::uint64_t seed, std::size_t evals) {
  OptimizerOptions options;
  options.max_function_evaluations = evals;
  options.seed = seed;
  options.retry = fast_retries();
  return options;
}

TEST(FaultTolerance, ResumeIsBitIdentical_RandSequential) {
  auto space = fake_space();
  const auto make = [&space](Objective& objective, OptimizerOptions options) {
    return std::make_unique<RandomSearchOptimizer>(space, objective, ConstraintBudgets{},
                                                   nullptr, options);
  };
  expect_resume_bit_identical(space, make, base_options(11, 20), 7,
                              "rand_seq");
}

TEST(FaultTolerance, ResumeIsBitIdentical_RandBatchedParallel) {
  auto space = fake_space();
  const auto make = [&space](Objective& objective, OptimizerOptions options) {
    return std::make_unique<RandomSearchOptimizer>(space, objective, ConstraintBudgets{},
                                                   nullptr, options);
  };
  OptimizerOptions options = base_options(12, 20);
  options.batch_size = 4;
  options.num_threads = 4;
  // 6 is mid-round for batch 4: the partial round must be dropped and
  // re-evaluated identically.
  expect_resume_bit_identical(space, make, options, 6, "rand_batched");
}

TEST(FaultTolerance, ResumeIsBitIdentical_HwIeciSequential) {
  auto space = fake_space();
  const auto make = [&space](Objective& objective, OptimizerOptions options) {
    return std::make_unique<BayesOptOptimizer>(
        space, objective, ConstraintBudgets{}, nullptr, options,
        std::make_unique<HwIeciAcquisition>());
  };
  expect_resume_bit_identical(space, make, base_options(13, 10), 5,
                              "ieci_seq");
}

TEST(FaultTolerance, ResumeIsBitIdentical_HwIeciBatched) {
  auto space = fake_space();
  const auto make = [&space](Objective& objective, OptimizerOptions options) {
    return std::make_unique<BayesOptOptimizer>(
        space, objective, ConstraintBudgets{}, nullptr, options,
        std::make_unique<HwIeciAcquisition>());
  };
  OptimizerOptions options = base_options(14, 10);
  options.batch_size = 3;
  options.num_threads = 2;
  expect_resume_bit_identical(space, make, options, 4, "ieci_batched");
}

TEST(FaultTolerance, ResumeFromEmptyJournalEqualsFreshRun) {
  auto space = fake_space();
  FakeObjective a_inner(space);
  RandomSearchOptimizer a(space, a_inner, {}, nullptr, base_options(15, 10));
  const auto reference = a.run();
  FakeObjective b_inner(space);
  RandomSearchOptimizer b(space, b_inner, {}, nullptr, base_options(15, 10));
  const auto resumed = b.resume({});
  EXPECT_EQ(trace_csv(resumed.trace), trace_csv(reference.trace));
}

TEST(FaultTolerance, ResumeRejectsMismatchedRecords) {
  auto space = fake_space();
  FakeObjective a_inner(space);
  RandomSearchOptimizer a(space, a_inner, {}, nullptr, base_options(16, 8));
  const auto reference = a.run();
  // Same method, different seed: the replayed proposals cannot match.
  FakeObjective b_inner(space);
  RandomSearchOptimizer b(space, b_inner, {}, nullptr, base_options(17, 8));
  EXPECT_THROW((void)b.resume(reference.trace.records()), std::runtime_error);
}

}  // namespace
}  // namespace hp::core
