// Property-style sweeps over seeds and methods: invariants that must hold
// for every run the framework produces, regardless of configuration.

#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "testbed/testbed_objective.hpp"

namespace hp::core {
namespace {

struct SweepCase {
  Method method;
  bool hyperpower;
  std::uint64_t seed;
};

std::string sweep_name(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = to_string(info.param.method);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + (info.param.hyperpower ? "_hp_" : "_def_") +
         std::to_string(info.param.seed);
}

class RunInvariants : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RunInvariants, HoldOnMnistRuns) {
  const SweepCase param = GetParam();
  const BenchmarkProblem problem = mnist_problem();
  testbed::TestbedOptions opt =
      testbed::calibrated_options("mnist", hw::gtx1070());
  opt.run_seed = param.seed;
  testbed::TestbedObjective objective(problem, testbed::mnist_landscape(),
                                      hw::gtx1070(), opt);
  ConstraintBudgets budgets;
  budgets.power_w = 85.0;
  HyperPowerFramework framework(problem, objective, budgets);
  hw::GpuSimulator sim(hw::gtx1070(), param.seed);
  hw::InferenceProfiler profiler(sim);
  (void)framework.train_hardware_models(profiler, 60, 2018);

  FrameworkOptions fo;
  fo.method = param.method;
  fo.hyperpower_mode = param.hyperpower;
  fo.optimizer.max_runtime_s = 1200.0;  // 20 virtual minutes
  fo.optimizer.max_samples = 5000;
  fo.optimizer.seed = param.seed;
  const auto result = framework.optimize(fo);
  const auto& records = result.run.trace.records();

  // Invariant 1: timestamps strictly increase and costs are non-negative.
  double prev_ts = -1.0;
  for (const auto& r : records) {
    EXPECT_GT(r.timestamp_s, prev_ts);
    prev_ts = r.timestamp_s;
    EXPECT_GE(r.cost_s, 0.0);
    EXPECT_GE(r.test_error, 0.0);
    EXPECT_LE(r.test_error, 1.0);
  }

  // Invariant 2: indices are dense and ordered.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].index, i);
  }

  // Invariant 3: the reported best is feasible, completed, and no worse
  // than any other feasible completed record.
  if (result.run.best) {
    EXPECT_TRUE(result.run.best->counts_for_best());
    for (const auto& r : records) {
      if (r.counts_for_best()) {
        EXPECT_LE(result.run.best->test_error, r.test_error);
      }
    }
  }

  // Invariant 4: in default mode nothing is ever model-filtered; in
  // HyperPower mode filtered records are violating-by-prediction.
  for (const auto& r : records) {
    if (!param.hyperpower) {
      EXPECT_NE(r.status, EvaluationStatus::ModelFiltered);
    } else if (r.status == EvaluationStatus::ModelFiltered) {
      EXPECT_TRUE(r.violates_constraints);
    }
  }

  // Invariant 5: the run respects the time budget up to one in-flight
  // sample (the paper lets the last sample complete).
  if (records.size() >= 2) {
    EXPECT_LT(records[records.size() - 2].timestamp_s,
              fo.optimizer.max_runtime_s + 1e-9);
  }

  // Invariant 6: statuses partition the trace.
  EXPECT_EQ(result.run.trace.function_evaluations() +
                result.run.trace.model_filtered_count() +
                [&] {
                  std::size_t infeasible = 0;
                  for (const auto& r : records) {
                    if (r.status == EvaluationStatus::InfeasibleArchitecture) {
                      ++infeasible;
                    }
                  }
                  return infeasible;
                }(),
            result.run.trace.size());
}

INSTANTIATE_TEST_SUITE_P(
    MethodsModesSeeds, RunInvariants,
    ::testing::Values(
        SweepCase{Method::Rand, true, 1}, SweepCase{Method::Rand, true, 2},
        SweepCase{Method::Rand, false, 1},
        SweepCase{Method::RandWalk, true, 1},
        SweepCase{Method::RandWalk, false, 2},
        SweepCase{Method::HwCwei, true, 1},
        SweepCase{Method::HwCwei, false, 1},
        SweepCase{Method::HwIeci, true, 1},
        SweepCase{Method::HwIeci, true, 2},
        SweepCase{Method::HwIeci, false, 1}),
    sweep_name);

class SeedDeterminism : public ::testing::TestWithParam<Method> {};

TEST_P(SeedDeterminism, IdenticalRunsForIdenticalSeeds) {
  const BenchmarkProblem problem = mnist_problem();
  ConstraintBudgets budgets;
  budgets.power_w = 85.0;
  const auto run_once = [&](std::uint64_t seed) {
    testbed::TestbedOptions opt =
        testbed::calibrated_options("mnist", hw::gtx1070());
    opt.run_seed = seed;
    testbed::TestbedObjective objective(problem, testbed::mnist_landscape(),
                                        hw::gtx1070(), opt);
    HyperPowerFramework framework(problem, objective, budgets);
    hw::GpuSimulator sim(hw::gtx1070(), 5);
    hw::InferenceProfiler profiler(sim);
    (void)framework.train_hardware_models(profiler, 60, 2018);
    FrameworkOptions fo;
    fo.method = GetParam();
    fo.optimizer.max_function_evaluations = 5;
    fo.optimizer.max_samples = 3000;
    fo.optimizer.seed = seed;
    return framework.optimize(fo);
  };
  const auto a = run_once(7);
  const auto b = run_once(7);
  ASSERT_EQ(a.run.trace.size(), b.run.trace.size());
  for (std::size_t i = 0; i < a.run.trace.size(); ++i) {
    EXPECT_EQ(a.run.trace.records()[i].config, b.run.trace.records()[i].config);
    EXPECT_EQ(a.run.trace.records()[i].test_error,
              b.run.trace.records()[i].test_error);
    EXPECT_EQ(a.run.trace.records()[i].timestamp_s,
              b.run.trace.records()[i].timestamp_s);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SeedDeterminism,
                         ::testing::Values(Method::Rand, Method::RandWalk,
                                           Method::HwCwei, Method::HwIeci),
                         [](const ::testing::TestParamInfo<Method>& param) {
                           std::string name = to_string(param.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace hp::core
