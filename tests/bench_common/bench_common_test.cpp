// Tests for the experiment-driver library every table/figure bench is
// built on: table rendering, number formatting, pair setup (the paper's
// budgets), and run_one determinism.

#include <gtest/gtest.h>

#include "common/experiment.hpp"
#include "common/table.hpp"

namespace hp::bench {
namespace {

TEST(TextTable, RendersAlignedColumnsWithSeparator) {
  TextTable t({"a", "long header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"wide cell", "x", "y"});
  const std::string out = t.render();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // The separator row is dashes.
  const auto first_nl = out.find('\n');
  const auto second_nl = out.find('\n', first_nl + 1);
  const std::string sep = out.substr(first_nl + 1, second_nl - first_nl - 1);
  EXPECT_EQ(sep.find_first_not_of('-'), std::string::npos);
  // Every line has the same width.
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  while (start < out.size()) {
    const auto nl = out.find('\n', start);
    const std::size_t width = nl - start;
    if (prev != std::string::npos) EXPECT_EQ(width, prev);
    prev = width;
    start = nl + 1;
  }
}

TEST(TextTable, RejectsRaggedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Formatting, Percent) {
  EXPECT_EQ(fmt_percent(0.2181), "21.81%");
  EXPECT_EQ(fmt_percent(0.9, 0), "90%");
  EXPECT_EQ(fmt_percent_pm(0.0101, 0.0018), "1.01% (0.18%)");
}

TEST(Formatting, HoursAndSpeedup) {
  EXPECT_EQ(fmt_hours(7704.0), "2.14");
  EXPECT_EQ(fmt_speedup(112.99), "112.99x");
  EXPECT_EQ(fmt_fixed(3.14159, 3), "3.142");
}

TEST(Formatting, OrDash) {
  EXPECT_EQ(fmt_or_dash(std::nullopt, fmt_hours), "-");
  EXPECT_EQ(fmt_or_dash(3600.0, fmt_hours), "1.00");
}

TEST(AsciiSeries, RendersOneRowPerSeries) {
  const std::string out = render_ascii_series(
      "title", {"a", "bb"}, {{0.0, 0.5, 1.0}, {1.0, 1.0, 1.0}}, 12);
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("a "), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  // min/max annotations present.
  EXPECT_NE(out.find("[0.000 -> 1.000]"), std::string::npos);
}

TEST(AsciiSeries, RejectsLabelMismatch) {
  EXPECT_THROW((void)render_ascii_series("t", {"a"}, {{1.0}, {2.0}}),
               std::invalid_argument);
}

TEST(PairSetup, PaperBudgetsWiredIn) {
  const PairSetup mnist_gtx = make_pair(Dataset::Mnist, Platform::Gtx1070);
  EXPECT_DOUBLE_EQ(*mnist_gtx.budgets.power_w, 85.0);
  EXPECT_TRUE(mnist_gtx.budgets.memory_mb.has_value());
  EXPECT_DOUBLE_EQ(mnist_gtx.time_budget_s, 2 * 3600.0);

  const PairSetup cifar_gtx = make_pair(Dataset::Cifar10, Platform::Gtx1070);
  EXPECT_DOUBLE_EQ(*cifar_gtx.budgets.power_w, 90.0);
  EXPECT_DOUBLE_EQ(cifar_gtx.time_budget_s, 5 * 3600.0);

  // Tegra: 10 W / 12 W and NO memory budget (paper footnote 1).
  const PairSetup mnist_tx1 = make_pair(Dataset::Mnist, Platform::TegraTx1);
  EXPECT_DOUBLE_EQ(*mnist_tx1.budgets.power_w, 10.0);
  EXPECT_FALSE(mnist_tx1.budgets.memory_mb.has_value());
  const PairSetup cifar_tx1 = make_pair(Dataset::Cifar10, Platform::TegraTx1);
  EXPECT_DOUBLE_EQ(*cifar_tx1.budgets.power_w, 12.0);
}

TEST(PairSetup, PaperPairsInTableColumnOrder) {
  const auto pairs = paper_pairs();
  ASSERT_EQ(pairs.size(), 4u);
  EXPECT_EQ(pairs[0].label, "MNIST - GTX 1070");
  EXPECT_EQ(pairs[1].label, "CIFAR-10 - GTX 1070");
  EXPECT_EQ(pairs[2].label, "MNIST - Tegra TX1");
  EXPECT_EQ(pairs[3].label, "CIFAR-10 - Tegra TX1");
}

TEST(TrainModels, MemoryModelOnlyWhereCounterExists) {
  const auto gtx = train_models(make_pair(Dataset::Mnist, Platform::Gtx1070),
                                40, 5);
  EXPECT_TRUE(gtx.power.has_value());
  EXPECT_TRUE(gtx.memory.has_value());
  EXPECT_GE(gtx.profiled_samples, 35u);
  const auto tx1 = train_models(make_pair(Dataset::Mnist, Platform::TegraTx1),
                                40, 5);
  EXPECT_TRUE(tx1.power.has_value());
  EXPECT_FALSE(tx1.memory.has_value());
}

TEST(RunOne, DeterministicForIdenticalSpecs) {
  const PairSetup pair = make_pair(Dataset::Mnist, Platform::Gtx1070);
  const TrainedModels models = train_models(pair, 40, 5);
  RunSpec spec;
  spec.method = core::Method::Rand;
  spec.max_function_evaluations = 3;
  spec.seed = 11;
  const auto a = run_one(pair, models, spec);
  const auto b = run_one(pair, models, spec);
  ASSERT_EQ(a.run.trace.size(), b.run.trace.size());
  for (std::size_t i = 0; i < a.run.trace.size(); ++i) {
    EXPECT_EQ(a.run.trace.records()[i].test_error,
              b.run.trace.records()[i].test_error);
  }
}

TEST(RunOne, RespectsModeAndMethod) {
  const PairSetup pair = make_pair(Dataset::Mnist, Platform::Gtx1070);
  const TrainedModels models = train_models(pair, 40, 5);
  RunSpec spec;
  spec.method = core::Method::RandWalk;
  spec.hyperpower = false;
  spec.max_function_evaluations = 2;
  const auto result = run_one(pair, models, spec);
  EXPECT_EQ(result.method_name, "Rand-Walk");
  EXPECT_FALSE(result.hyperpower_mode);
  EXPECT_EQ(result.run.trace.model_filtered_count(), 0u);
}

TEST(Names, DatasetAndPlatformStrings) {
  EXPECT_EQ(to_string(Dataset::Mnist), "MNIST");
  EXPECT_EQ(to_string(Dataset::Cifar10), "CIFAR-10");
  EXPECT_EQ(to_string(Platform::Gtx1070), "GTX 1070");
  EXPECT_EQ(to_string(Platform::JetsonNano), "Jetson Nano");
}

}  // namespace
}  // namespace hp::bench
