#include "gp/kernel_fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace hp::gp {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(KernelFit, RejectsBadDataset) {
  KernelParams p;
  GaussianProcess gp(Matern52Kernel(p), 1e-4);
  EXPECT_THROW((void)fit_kernel_by_ml(gp, Matrix(), Vector()),
               std::invalid_argument);
  EXPECT_THROW((void)fit_kernel_by_ml(gp, Matrix(3, 1), Vector(2)),
               std::invalid_argument);
}

TEST(KernelFit, ImprovesLmlOverInitialGuess) {
  stats::Rng rng(3);
  Matrix x(30, 1);
  Vector y(30);
  for (std::size_t i = 0; i < 30; ++i) {
    x(i, 0) = rng.uniform();
    y[i] = std::sin(8.0 * x(i, 0)) + rng.gaussian(0.0, 0.05);
  }
  KernelParams start;
  start.signal_variance = 0.01;  // deliberately bad guess
  start.length_scales = {5.0};
  GaussianProcess gp(Matern52Kernel(start), 0.5);
  gp.fit(x, y);
  const double lml_before = gp.log_marginal_likelihood();

  KernelFitOptions opt;
  opt.num_restarts = 2;
  opt.iterations_per_restart = 25;
  const KernelFitResult result = fit_kernel_by_ml(gp, x, y, opt);
  EXPECT_GT(result.log_marginal_likelihood, lml_before);
  EXPECT_GT(result.evaluations, 0);
  // The GP ends up fitted with the chosen hyper-parameters.
  EXPECT_TRUE(gp.fitted());
  EXPECT_NEAR(gp.kernel().params().signal_variance,
              result.params.signal_variance, 1e-12);
}

TEST(KernelFit, RecoversSensibleLengthScaleOnSmoothData) {
  // Smooth slow function: fitted length scale should not be tiny.
  Matrix x(20, 1);
  Vector y(20);
  for (std::size_t i = 0; i < 20; ++i) {
    x(i, 0) = static_cast<double>(i) / 19.0;
    y[i] = x(i, 0);  // linear, very smooth
  }
  KernelParams start;
  start.length_scales = {0.01};
  GaussianProcess gp(Matern52Kernel(start), 1e-4);
  KernelFitOptions opt;
  opt.num_restarts = 2;
  const KernelFitResult result = fit_kernel_by_ml(gp, x, y, opt);
  EXPECT_GT(result.params.length_scales[0], 0.05);
}

TEST(KernelFit, ExpandsIsotropicStartToArd) {
  Matrix x(15, 3);
  Vector y(15);
  stats::Rng rng(7);
  for (std::size_t i = 0; i < 15; ++i) {
    for (std::size_t d = 0; d < 3; ++d) x(i, d) = rng.uniform();
    y[i] = x(i, 0);
  }
  KernelParams start;  // single isotropic length scale
  GaussianProcess gp(Matern52Kernel(start), 1e-4);
  const KernelFitResult result = fit_kernel_by_ml(gp, x, y);
  EXPECT_EQ(result.params.length_scales.size(), 3u);
}

TEST(KernelFit, FitNoiseRespectsFloor) {
  Matrix x(10, 1);
  Vector y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i) / 9.0;
    y[i] = 2.0 * x(i, 0);
  }
  KernelParams start;
  GaussianProcess gp(Matern52Kernel(start), 1.0);
  KernelFitOptions opt;
  opt.min_noise_variance = 1e-6;
  const KernelFitResult result = fit_kernel_by_ml(gp, x, y, opt);
  EXPECT_GE(result.noise_variance, opt.min_noise_variance);
  // Noiseless data: fitted noise should shrink well below the start value.
  EXPECT_LT(result.noise_variance, 1.0);
}

TEST(KernelFit, DeterministicForSeed) {
  Matrix x(12, 1);
  Vector y(12);
  for (std::size_t i = 0; i < 12; ++i) {
    x(i, 0) = static_cast<double>(i) / 11.0;
    y[i] = std::cos(3.0 * x(i, 0));
  }
  KernelParams start;
  GaussianProcess gp1(Matern52Kernel(start), 1e-3);
  GaussianProcess gp2(Matern52Kernel(start), 1e-3);
  KernelFitOptions opt;
  opt.seed = 99;
  const auto r1 = fit_kernel_by_ml(gp1, x, y, opt);
  const auto r2 = fit_kernel_by_ml(gp2, x, y, opt);
  EXPECT_DOUBLE_EQ(r1.log_marginal_likelihood, r2.log_marginal_likelihood);
  EXPECT_EQ(r1.evaluations, r2.evaluations);
}

}  // namespace
}  // namespace hp::gp
