#include "gp/gaussian_process.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace hp::gp {
namespace {

using linalg::Matrix;
using linalg::Vector;

GaussianProcess make_gp(double noise = 1e-8) {
  KernelParams p;
  p.signal_variance = 1.0;
  p.length_scales = {0.4};
  Matern52Kernel k(p);
  return GaussianProcess(k, noise);
}

Matrix column(std::initializer_list<double> xs) {
  Matrix m(xs.size(), 1);
  std::size_t i = 0;
  for (double x : xs) m(i++, 0) = x;
  return m;
}

TEST(GaussianProcess, RejectsNegativeNoise) {
  KernelParams p;
  Matern52Kernel k(p);
  EXPECT_THROW(GaussianProcess(k, -1.0), std::invalid_argument);
}

TEST(GaussianProcess, PredictBeforeFitThrows) {
  auto gp = make_gp();
  EXPECT_FALSE(gp.fitted());
  EXPECT_THROW((void)gp.predict(Vector{0.0}), std::logic_error);
  EXPECT_THROW((void)gp.log_marginal_likelihood(), std::logic_error);
  EXPECT_THROW((void)gp.loo_means(), std::logic_error);
}

TEST(GaussianProcess, FitValidatesShapes) {
  auto gp = make_gp();
  EXPECT_THROW(gp.fit(Matrix(), Vector()), std::invalid_argument);
  EXPECT_THROW(gp.fit(Matrix(3, 1), Vector(2)), std::invalid_argument);
}

TEST(GaussianProcess, InterpolatesTrainingDataWithLowNoise) {
  auto gp = make_gp(1e-10);
  const Matrix x = column({0.0, 0.3, 0.7, 1.0});
  const Vector y{0.0, 0.5, -0.2, 0.3};
  gp.fit(x, y);
  for (std::size_t i = 0; i < 4; ++i) {
    const Prediction p = gp.predict(x.row(i));
    EXPECT_NEAR(p.mean, y[i], 1e-4) << "i=" << i;
    EXPECT_LT(p.stddev(), 1e-2);
  }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData) {
  auto gp = make_gp(1e-6);
  gp.fit(column({0.4, 0.5, 0.6}), Vector{0.1, 0.2, 0.1});
  const double var_near = gp.predict(Vector{0.5}).variance;
  const double var_far = gp.predict(Vector{3.0}).variance;
  EXPECT_LT(var_near, var_far);
  // Far from data, the posterior reverts to the prior variance.
  EXPECT_NEAR(var_far, 1.0, 1e-3);
}

TEST(GaussianProcess, MeanRevertsToTargetMeanFarAway) {
  auto gp = make_gp(1e-6);
  gp.fit(column({0.0, 0.2}), Vector{4.0, 6.0});
  const Prediction far = gp.predict(Vector{50.0});
  EXPECT_NEAR(far.mean, 5.0, 1e-6);  // constant-mean function = target mean
  EXPECT_DOUBLE_EQ(gp.target_mean(), 5.0);
}

TEST(GaussianProcess, PredictionVarianceNeverNegative) {
  auto gp = make_gp(1e-9);
  stats::Rng rng(5);
  Matrix x(20, 1);
  Vector y(20);
  for (std::size_t i = 0; i < 20; ++i) {
    x(i, 0) = rng.uniform();
    y[i] = std::sin(6.0 * x(i, 0));
  }
  gp.fit(x, y);
  for (double q = -0.5; q <= 1.5; q += 0.05) {
    EXPECT_GE(gp.predict(Vector{q}).variance, 0.0);
  }
}

TEST(GaussianProcess, ObservationVarianceAddsNoise) {
  Prediction p;
  p.variance = 0.5;
  EXPECT_DOUBLE_EQ(p.observation_variance(0.25), 0.75);
}

TEST(GaussianProcess, LogMarginalLikelihoodPrefersTrueScale) {
  // Data generated with length scale 0.4; a GP with wildly wrong length
  // scale should have lower LML.
  stats::Rng rng(9);
  Matrix x(25, 1);
  Vector y(25);
  for (std::size_t i = 0; i < 25; ++i) {
    x(i, 0) = rng.uniform();
    y[i] = std::sin(4.0 * x(i, 0));
  }
  KernelParams good;
  good.length_scales = {0.4};
  KernelParams bad;
  bad.length_scales = {0.001};
  GaussianProcess gp_good(Matern52Kernel(good), 1e-4);
  GaussianProcess gp_bad(Matern52Kernel(bad), 1e-4);
  gp_good.fit(x, y);
  gp_bad.fit(x, y);
  EXPECT_GT(gp_good.log_marginal_likelihood(),
            gp_bad.log_marginal_likelihood());
}

TEST(GaussianProcess, HigherNoiseWidensPredictiveBand) {
  const Matrix x = column({0.0, 0.5, 1.0});
  const Vector y{0.0, 1.0, 0.0};
  auto low = make_gp(1e-8);
  auto high = make_gp(0.5);
  low.fit(x, y);
  high.fit(x, y);
  EXPECT_LT(low.predict(Vector{0.5}).variance,
            high.predict(Vector{0.5}).variance);
}

TEST(GaussianProcess, LooMeansReasonableOnSmoothData) {
  stats::Rng rng(11);
  Matrix x(30, 1);
  Vector y(30);
  for (std::size_t i = 0; i < 30; ++i) {
    x(i, 0) = static_cast<double>(i) / 29.0;
    y[i] = std::sin(3.0 * x(i, 0));
  }
  auto gp = make_gp(1e-6);
  gp.fit(x, y);
  const Vector loo = gp.loo_means();
  double max_err = 0.0;
  for (std::size_t i = 1; i + 1 < 30; ++i) {  // interior points
    max_err = std::max(max_err, std::abs(loo[i] - y[i]));
  }
  EXPECT_LT(max_err, 0.05);
}

TEST(GaussianProcess, SetKernelRefits) {
  auto gp = make_gp(1e-6);
  gp.fit(column({0.0, 1.0}), Vector{0.0, 1.0});
  const double before = gp.predict(Vector{0.5}).mean;
  KernelParams wide;
  wide.length_scales = {10.0};
  gp.set_kernel(Matern52Kernel(wide));
  EXPECT_TRUE(gp.fitted());
  const double after = gp.predict(Vector{0.5}).mean;
  EXPECT_NE(before, after);
}

TEST(GaussianProcess, SetNoiseVarianceValidatesAndRefits) {
  auto gp = make_gp(1e-6);
  gp.fit(column({0.0, 1.0}), Vector{0.0, 1.0});
  EXPECT_THROW(gp.set_noise_variance(-0.1), std::invalid_argument);
  gp.set_noise_variance(0.3);
  EXPECT_DOUBLE_EQ(gp.noise_variance(), 0.3);
  EXPECT_TRUE(gp.fitted());
}

TEST(GaussianProcess, NumObservations) {
  auto gp = make_gp();
  EXPECT_EQ(gp.num_observations(), 0u);
  gp.fit(column({0.0, 0.5, 1.0}), Vector{1.0, 2.0, 3.0});
  EXPECT_EQ(gp.num_observations(), 3u);
}

TEST(GaussianProcess, MultiDimensionalInputs) {
  KernelParams p;
  p.length_scales = {0.3, 0.3, 0.3};
  GaussianProcess gp(Matern52Kernel(p), 1e-8);
  stats::Rng rng(13);
  Matrix x(15, 3);
  Vector y(15);
  for (std::size_t i = 0; i < 15; ++i) {
    for (std::size_t d = 0; d < 3; ++d) x(i, d) = rng.uniform();
    y[i] = x(i, 0) + 2.0 * x(i, 1) - x(i, 2);
  }
  gp.fit(x, y);
  const Prediction pred = gp.predict(x.row(7));
  EXPECT_NEAR(pred.mean, y[7], 1e-3);
}

}  // namespace
}  // namespace hp::gp
