#include "gp/gaussian_process.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace hp::gp {
namespace {

using linalg::Matrix;
using linalg::Vector;

GaussianProcess make_gp(double noise = 1e-8) {
  KernelParams p;
  p.signal_variance = 1.0;
  p.length_scales = {0.4};
  Matern52Kernel k(p);
  return GaussianProcess(k, noise);
}

Matrix column(std::initializer_list<double> xs) {
  Matrix m(xs.size(), 1);
  std::size_t i = 0;
  for (double x : xs) m(i++, 0) = x;
  return m;
}

TEST(GaussianProcess, RejectsNegativeNoise) {
  KernelParams p;
  Matern52Kernel k(p);
  EXPECT_THROW(GaussianProcess(k, -1.0), std::invalid_argument);
}

TEST(GaussianProcess, PredictBeforeFitThrows) {
  auto gp = make_gp();
  EXPECT_FALSE(gp.fitted());
  EXPECT_THROW((void)gp.predict(Vector{0.0}), std::logic_error);
  EXPECT_THROW((void)gp.log_marginal_likelihood(), std::logic_error);
  EXPECT_THROW((void)gp.loo_means(), std::logic_error);
}

TEST(GaussianProcess, FitValidatesShapes) {
  auto gp = make_gp();
  EXPECT_THROW(gp.fit(Matrix(), Vector()), std::invalid_argument);
  EXPECT_THROW(gp.fit(Matrix(3, 1), Vector(2)), std::invalid_argument);
}

TEST(GaussianProcess, InterpolatesTrainingDataWithLowNoise) {
  auto gp = make_gp(1e-10);
  const Matrix x = column({0.0, 0.3, 0.7, 1.0});
  const Vector y{0.0, 0.5, -0.2, 0.3};
  gp.fit(x, y);
  for (std::size_t i = 0; i < 4; ++i) {
    const Prediction p = gp.predict(x.row(i));
    EXPECT_NEAR(p.mean, y[i], 1e-4) << "i=" << i;
    EXPECT_LT(p.stddev(), 1e-2);
  }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData) {
  auto gp = make_gp(1e-6);
  gp.fit(column({0.4, 0.5, 0.6}), Vector{0.1, 0.2, 0.1});
  const double var_near = gp.predict(Vector{0.5}).variance;
  const double var_far = gp.predict(Vector{3.0}).variance;
  EXPECT_LT(var_near, var_far);
  // Far from data, the posterior reverts to the prior variance.
  EXPECT_NEAR(var_far, 1.0, 1e-3);
}

TEST(GaussianProcess, MeanRevertsToTargetMeanFarAway) {
  auto gp = make_gp(1e-6);
  gp.fit(column({0.0, 0.2}), Vector{4.0, 6.0});
  const Prediction far = gp.predict(Vector{50.0});
  EXPECT_NEAR(far.mean, 5.0, 1e-6);  // constant-mean function = target mean
  EXPECT_DOUBLE_EQ(gp.target_mean(), 5.0);
}

TEST(GaussianProcess, PredictionVarianceNeverNegative) {
  auto gp = make_gp(1e-9);
  stats::Rng rng(5);
  Matrix x(20, 1);
  Vector y(20);
  for (std::size_t i = 0; i < 20; ++i) {
    x(i, 0) = rng.uniform();
    y[i] = std::sin(6.0 * x(i, 0));
  }
  gp.fit(x, y);
  for (double q = -0.5; q <= 1.5; q += 0.05) {
    EXPECT_GE(gp.predict(Vector{q}).variance, 0.0);
  }
}

TEST(GaussianProcess, ObservationVarianceAddsNoise) {
  Prediction p;
  p.variance = 0.5;
  EXPECT_DOUBLE_EQ(p.observation_variance(0.25), 0.75);
}

TEST(GaussianProcess, LogMarginalLikelihoodPrefersTrueScale) {
  // Data generated with length scale 0.4; a GP with wildly wrong length
  // scale should have lower LML.
  stats::Rng rng(9);
  Matrix x(25, 1);
  Vector y(25);
  for (std::size_t i = 0; i < 25; ++i) {
    x(i, 0) = rng.uniform();
    y[i] = std::sin(4.0 * x(i, 0));
  }
  KernelParams good;
  good.length_scales = {0.4};
  KernelParams bad;
  bad.length_scales = {0.001};
  GaussianProcess gp_good(Matern52Kernel(good), 1e-4);
  GaussianProcess gp_bad(Matern52Kernel(bad), 1e-4);
  gp_good.fit(x, y);
  gp_bad.fit(x, y);
  EXPECT_GT(gp_good.log_marginal_likelihood(),
            gp_bad.log_marginal_likelihood());
}

TEST(GaussianProcess, HigherNoiseWidensPredictiveBand) {
  const Matrix x = column({0.0, 0.5, 1.0});
  const Vector y{0.0, 1.0, 0.0};
  auto low = make_gp(1e-8);
  auto high = make_gp(0.5);
  low.fit(x, y);
  high.fit(x, y);
  EXPECT_LT(low.predict(Vector{0.5}).variance,
            high.predict(Vector{0.5}).variance);
}

TEST(GaussianProcess, LooMeansReasonableOnSmoothData) {
  stats::Rng rng(11);
  Matrix x(30, 1);
  Vector y(30);
  for (std::size_t i = 0; i < 30; ++i) {
    x(i, 0) = static_cast<double>(i) / 29.0;
    y[i] = std::sin(3.0 * x(i, 0));
  }
  auto gp = make_gp(1e-6);
  gp.fit(x, y);
  const Vector loo = gp.loo_means();
  double max_err = 0.0;
  for (std::size_t i = 1; i + 1 < 30; ++i) {  // interior points
    max_err = std::max(max_err, std::abs(loo[i] - y[i]));
  }
  EXPECT_LT(max_err, 0.05);
}

TEST(GaussianProcess, SetKernelRefits) {
  auto gp = make_gp(1e-6);
  gp.fit(column({0.0, 1.0}), Vector{0.0, 1.0});
  const double before = gp.predict(Vector{0.5}).mean;
  KernelParams wide;
  wide.length_scales = {10.0};
  gp.set_kernel(Matern52Kernel(wide));
  EXPECT_TRUE(gp.fitted());
  const double after = gp.predict(Vector{0.5}).mean;
  EXPECT_NE(before, after);
}

TEST(GaussianProcess, SetNoiseVarianceValidatesAndRefits) {
  auto gp = make_gp(1e-6);
  gp.fit(column({0.0, 1.0}), Vector{0.0, 1.0});
  EXPECT_THROW(gp.set_noise_variance(-0.1), std::invalid_argument);
  gp.set_noise_variance(0.3);
  EXPECT_DOUBLE_EQ(gp.noise_variance(), 0.3);
  EXPECT_TRUE(gp.fitted());
}

TEST(GaussianProcess, NumObservations) {
  auto gp = make_gp();
  EXPECT_EQ(gp.num_observations(), 0u);
  gp.fit(column({0.0, 0.5, 1.0}), Vector{1.0, 2.0, 3.0});
  EXPECT_EQ(gp.num_observations(), 3u);
}

TEST(GaussianProcess, MultiDimensionalInputs) {
  KernelParams p;
  p.length_scales = {0.3, 0.3, 0.3};
  GaussianProcess gp(Matern52Kernel(p), 1e-8);
  stats::Rng rng(13);
  Matrix x(15, 3);
  Vector y(15);
  for (std::size_t i = 0; i < 15; ++i) {
    for (std::size_t d = 0; d < 3; ++d) x(i, d) = rng.uniform();
    y[i] = x(i, 0) + 2.0 * x(i, 1) - x(i, 2);
  }
  gp.fit(x, y);
  const Prediction pred = gp.predict(x.row(7));
  EXPECT_NEAR(pred.mean, y[7], 1e-3);
}

// ---------------------------------------------------------------------------
// Incremental refit paths (DESIGN.md par.13): the fast paths must be
// bit-identical to fitting from scratch, and last_refit_kind() must report
// which path actually ran.
// ---------------------------------------------------------------------------

/// Random dataset on the unit cube: @p n rows of dimension @p d.
void random_dataset(std::size_t n, std::size_t d, std::uint64_t seed,
                    Matrix& x, Vector& y) {
  stats::Rng rng(seed);
  x = Matrix(n, d);
  y = Vector(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < d; ++c) x(i, c) = rng.uniform();
    y[i] = std::sin(3.0 * x(i, 0)) + 0.1 * static_cast<double>(i % 5);
  }
}

GaussianProcess make_gp2d(double noise = 1e-4) {
  KernelParams p;
  p.length_scales = {0.3, 0.3};
  return GaussianProcess(Matern52Kernel(p), noise);
}

/// Asserts identical posterior state via bitwise-equal predictions at a
/// probe grid plus the log marginal likelihood.
void expect_same_posterior(const GaussianProcess& a, const GaussianProcess& b) {
  EXPECT_EQ(a.log_marginal_likelihood(), b.log_marginal_likelihood());
  EXPECT_EQ(a.target_mean(), b.target_mean());
  for (double u : {0.0, 0.21, 0.5, 0.77, 1.0}) {
    const Vector probe{u, 1.0 - u};
    const Prediction pa = a.predict(probe);
    const Prediction pb = b.predict(probe);
    EXPECT_EQ(pa.mean, pb.mean) << "probe " << u;
    EXPECT_EQ(pa.variance, pb.variance) << "probe " << u;
  }
}

TEST(GaussianProcessIncremental, ExtensionMatchesFullRefitBitwise) {
  Matrix x;
  Vector y;
  random_dataset(30, 2, 71, x, y);
  auto incremental = make_gp2d();
  Matrix x_head(20, 2);
  Vector y_head(20);
  for (std::size_t i = 0; i < 20; ++i) {
    x_head(i, 0) = x(i, 0);
    x_head(i, 1) = x(i, 1);
    y_head[i] = y[i];
  }
  incremental.fit(x_head, y_head);
  EXPECT_EQ(incremental.last_refit_kind(), RefitKind::kFull);
  // Appending rows takes the O(n^2) bordered path...
  incremental.fit(x, y);
  EXPECT_EQ(incremental.last_refit_kind(), RefitKind::kExtended);
  // ...and agrees with a from-scratch fit bit-for-bit.
  auto fresh = make_gp2d();
  fresh.fit(x, y);
  EXPECT_EQ(fresh.last_refit_kind(), RefitKind::kFull);
  expect_same_posterior(incremental, fresh);
}

TEST(GaussianProcessIncremental, SingleRowExtensionPerRound) {
  Matrix x;
  Vector y;
  random_dataset(25, 2, 5, x, y);
  auto incremental = make_gp2d();
  auto fresh = make_gp2d();
  for (std::size_t n = 1; n <= 25; ++n) {
    Matrix xn(n, 2);
    Vector yn(n);
    for (std::size_t i = 0; i < n; ++i) {
      xn(i, 0) = x(i, 0);
      xn(i, 1) = x(i, 1);
      yn[i] = y[i];
    }
    incremental.fit(xn, yn);
    EXPECT_EQ(incremental.last_refit_kind(),
              n == 1 ? RefitKind::kFull : RefitKind::kExtended);
    if (n == 25) {
      fresh.fit(xn, yn);
      expect_same_posterior(incremental, fresh);
    }
  }
}

TEST(GaussianProcessIncremental, TruncationMatchesFullRefitBitwise) {
  Matrix x;
  Vector y;
  random_dataset(24, 2, 72, x, y);
  auto incremental = make_gp2d();
  incremental.fit(x, y);
  // Shrink to the leading 18 rows: the constant-liar pop path.
  Matrix x_head(18, 2);
  Vector y_head(18);
  for (std::size_t i = 0; i < 18; ++i) {
    x_head(i, 0) = x(i, 0);
    x_head(i, 1) = x(i, 1);
    y_head[i] = y[i];
  }
  incremental.fit(x_head, y_head);
  EXPECT_EQ(incremental.last_refit_kind(), RefitKind::kTruncated);
  auto fresh = make_gp2d();
  fresh.fit(std::move(x_head), std::move(y_head));
  expect_same_posterior(incremental, fresh);
}

TEST(GaussianProcessIncremental, SameInputsReuseFactorNewTargets) {
  Matrix x;
  Vector y;
  random_dataset(16, 2, 73, x, y);
  auto incremental = make_gp2d();
  incremental.fit(x, y);
  Vector y2 = y;
  for (std::size_t i = 0; i < y2.size(); ++i) y2[i] += 0.25;
  incremental.fit(x, y2);
  EXPECT_EQ(incremental.last_refit_kind(), RefitKind::kReused);
  auto fresh = make_gp2d();
  fresh.fit(std::move(x), std::move(y2));
  expect_same_posterior(incremental, fresh);
}

TEST(GaussianProcessIncremental, ChangedRowForcesFullRefit) {
  Matrix x;
  Vector y;
  random_dataset(12, 2, 74, x, y);
  auto gp = make_gp2d();
  gp.fit(x, y);
  Matrix x2 = x;
  x2(3, 1) += 1e-9;  // any bit difference in the prefix disables reuse
  gp.fit(std::move(x2), std::move(y));
  EXPECT_EQ(gp.last_refit_kind(), RefitKind::kFull);
}

TEST(GaussianProcessIncremental, KernelOrNoiseChangeInvalidatesCache) {
  Matrix x;
  Vector y;
  random_dataset(14, 2, 75, x, y);
  auto gp = make_gp2d();
  gp.fit(x, y);
  gp.fit(x, y);
  ASSERT_EQ(gp.last_refit_kind(), RefitKind::kReused);
  // The kernel-ML refit path replaces kernel + noise: both setters must
  // force a full factorization (the cached Gram is stale).
  KernelParams p;
  p.length_scales = {0.5, 0.5};
  gp.set_kernel(Matern52Kernel(p));
  EXPECT_EQ(gp.last_refit_kind(), RefitKind::kFull);
  gp.fit(x, y);
  EXPECT_EQ(gp.last_refit_kind(), RefitKind::kReused);
  gp.set_noise_variance(2e-4);
  EXPECT_EQ(gp.last_refit_kind(), RefitKind::kFull);
}

TEST(GaussianProcessIncremental, JitteredFactorDisablesIncrementalReuse) {
  // Duplicate rows with zero noise make the Gram singular, so the factor
  // carries jitter; a jittered factor has no bit-identical incremental
  // counterpart and appending must fall back to the full path.
  Matrix x(2, 2);
  x(0, 0) = x(1, 0) = 0.4;
  x(0, 1) = x(1, 1) = 0.6;
  Vector y{1.0, 1.0};
  auto gp = make_gp2d(0.0);
  gp.fit(x, y);
  ASSERT_EQ(gp.last_refit_kind(), RefitKind::kFull);
  Matrix x2(3, 2);
  x2(0, 0) = x2(1, 0) = 0.4;
  x2(0, 1) = x2(1, 1) = 0.6;
  x2(2, 0) = 0.1;
  x2(2, 1) = 0.9;
  gp.fit(std::move(x2), Vector{1.0, 1.0, 2.0});
  EXPECT_EQ(gp.last_refit_kind(), RefitKind::kFull);
}

TEST(GaussianProcessIncremental, SpanPredictMatchesVectorPredict) {
  Matrix x;
  Vector y;
  random_dataset(20, 2, 76, x, y);
  auto gp = make_gp2d();
  gp.fit(std::move(x), std::move(y));
  PredictScratch scratch;  // reused across calls, as in block scoring
  for (double u : {0.0, 0.33, 0.66, 1.0}) {
    const Vector probe{u, u * 0.5};
    const Prediction want = gp.predict(probe);
    const Prediction got = gp.predict(probe.raw(), scratch);
    EXPECT_EQ(got.mean, want.mean);
    EXPECT_EQ(got.variance, want.variance);
  }
}

}  // namespace
}  // namespace hp::gp
