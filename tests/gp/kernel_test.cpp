#include "gp/kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "linalg/cholesky.hpp"
#include "stats/rng.hpp"

namespace hp::gp {
namespace {

using linalg::Matrix;
using linalg::Vector;

std::unique_ptr<Kernel> make_kernel(const std::string& name,
                                    KernelParams params) {
  if (name == "squared_exponential") {
    return std::make_unique<SquaredExponentialKernel>(std::move(params));
  }
  if (name == "matern32") {
    return std::make_unique<Matern32Kernel>(std::move(params));
  }
  return std::make_unique<Matern52Kernel>(std::move(params));
}

class KernelKinds : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Kernel> kernel() const {
    KernelParams p;
    p.signal_variance = 1.7;
    p.length_scales = {0.5, 1.5};
    return make_kernel(GetParam(), p);
  }
};

TEST_P(KernelKinds, SymmetricInArguments) {
  const auto k = kernel();
  Vector a{0.1, 0.9};
  Vector b{0.7, 0.2};
  EXPECT_DOUBLE_EQ((*k)(a, b), (*k)(b, a));
}

TEST_P(KernelKinds, DiagonalEqualsSignalVariance) {
  const auto k = kernel();
  Vector x{0.3, 0.4};
  EXPECT_NEAR((*k)(x, x), 1.7, 1e-12);
  EXPECT_DOUBLE_EQ(k->diagonal_value(), 1.7);
}

TEST_P(KernelKinds, DecaysWithDistance) {
  const auto k = kernel();
  Vector x{0.0, 0.0};
  double prev = (*k)(x, x);
  for (double d = 0.2; d < 3.0; d += 0.2) {
    const double v = (*k)(x, Vector{d, d});
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST_P(KernelKinds, GramMatrixIsPositiveDefinite) {
  const auto k = kernel();
  stats::Rng rng(3);
  Matrix x(12, 2);
  for (std::size_t i = 0; i < 12; ++i) {
    x(i, 0) = rng.uniform();
    x(i, 1) = rng.uniform();
  }
  Matrix gram_m = kernel_matrix(*k, x);
  EXPECT_TRUE(gram_m.is_symmetric(1e-12));
  const auto chol = linalg::Cholesky::with_jitter(gram_m);
  ASSERT_TRUE(chol.has_value());
  EXPECT_LT(chol->jitter_used(), 1e-4);
}

TEST_P(KernelKinds, WithParamsChangesHyperparameters) {
  const auto k = kernel();
  KernelParams p;
  p.signal_variance = 3.0;
  p.length_scales = {1.0};
  const auto k2 = k->with_params(p);
  EXPECT_DOUBLE_EQ(k2->diagonal_value(), 3.0);
  EXPECT_EQ(k2->name(), k->name());
}

TEST_P(KernelKinds, CloneIsIndependentCopy) {
  const auto k = kernel();
  const auto c = k->clone();
  Vector a{0.1, 0.2};
  Vector b{0.3, 0.4};
  EXPECT_DOUBLE_EQ((*k)(a, b), (*c)(a, b));
}

TEST_P(KernelKinds, DimensionMismatchThrows) {
  const auto k = kernel();
  EXPECT_THROW((void)(*k)(Vector{1.0}, Vector{1.0, 2.0}),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelKinds,
                         ::testing::Values("squared_exponential", "matern32",
                                           "matern52"));

TEST(KernelParams, ValidationRejectsBadValues) {
  KernelParams p;
  p.signal_variance = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.signal_variance = 1.0;
  p.length_scales = {};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.length_scales = {-1.0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(KernelParams, IsotropicBroadcast) {
  KernelParams p;
  p.length_scales = {2.0};
  EXPECT_DOUBLE_EQ(p.length_scale(0), 2.0);
  EXPECT_DOUBLE_EQ(p.length_scale(7), 2.0);
}

TEST(KernelParams, ArdPerDimension) {
  KernelParams p;
  p.length_scales = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(p.length_scale(1), 2.0);
  EXPECT_THROW((void)p.length_scale(2), std::out_of_range);
}

TEST(ArdDistance, WeightsDimensionsByLengthScale) {
  KernelParams p;
  p.length_scales = {1.0, 10.0};
  // Distance along the long-length-scale dimension contributes less.
  const double d_short = ard_distance(Vector{0.0, 0.0}, Vector{1.0, 0.0}, p);
  const double d_long = ard_distance(Vector{0.0, 0.0}, Vector{0.0, 1.0}, p);
  EXPECT_DOUBLE_EQ(d_short, 1.0);
  EXPECT_DOUBLE_EQ(d_long, 0.1);
}

TEST(ArdDistance, LengthScaleCountMismatchThrows) {
  KernelParams p;
  p.length_scales = {1.0, 2.0};
  EXPECT_THROW(
      (void)ard_distance(Vector{0.0, 0.0, 0.0}, Vector{1.0, 0.0, 0.0}, p),
      std::invalid_argument);
}

TEST(KernelCross, MatchesElementwiseEvaluation) {
  KernelParams p;
  Matern52Kernel k(p);
  Matrix x{{0.0, 0.0}, {0.5, 0.5}, {1.0, 0.0}};
  Vector q{0.25, 0.25};
  const Vector cross = kernel_cross(k, x, q);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(cross[i], k(x.row(i), q));
  }
}

TEST(Matern52, MatchesClosedForm) {
  KernelParams p;
  p.signal_variance = 2.0;
  p.length_scales = {1.0};
  Matern52Kernel k(p);
  const double r = 0.7;
  const double s = std::sqrt(5.0) * r;
  const double expected = 2.0 * (1.0 + s + s * s / 3.0) * std::exp(-s);
  EXPECT_NEAR(k(Vector{0.0}, Vector{r}), expected, 1e-14);
}

TEST(SquaredExponential, MatchesClosedForm) {
  KernelParams p;
  SquaredExponentialKernel k(p);
  EXPECT_NEAR(k(Vector{0.0}, Vector{1.0}), std::exp(-0.5), 1e-14);
}

TEST(Matern32, MatchesClosedForm) {
  KernelParams p;
  Matern32Kernel k(p);
  const double s = std::sqrt(3.0) * 0.5;
  EXPECT_NEAR(k(Vector{0.0}, Vector{0.5}), (1.0 + s) * std::exp(-s), 1e-14);
}

TEST(KernelSmoothnessOrdering, SeDecaysFastestAtLargeDistance) {
  KernelParams p;
  SquaredExponentialKernel se(p);
  Matern32Kernel m32(p);
  Matern52Kernel m52(p);
  Vector a{0.0};
  Vector b{3.0};
  // At large distance: SE < Matern52 < Matern32 (heavier tails for rougher
  // kernels).
  EXPECT_LT(se(a, b), m52(a, b));
  EXPECT_LT(m52(a, b), m32(a, b));
}

}  // namespace
}  // namespace hp::gp
