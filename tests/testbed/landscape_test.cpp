#include "testbed/landscape.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hp::testbed {
namespace {

class LandscapeTest : public ::testing::Test {
 protected:
  LandscapeTest()
      : mnist_(core::mnist_problem()),
        cifar_(core::cifar10_problem()),
        mnist_land_(mnist_, mnist_landscape()),
        cifar_land_(cifar_, cifar10_landscape()) {}

  core::Configuration mnist_config(double lr = 0.01, double momentum = 0.85,
                                   double features = 50.0) const {
    return {features, 3.0, 2.0, 400.0, lr, momentum};
  }

  core::BenchmarkProblem mnist_;
  core::BenchmarkProblem cifar_;
  ErrorLandscape mnist_land_;
  ErrorLandscape cifar_land_;
};

TEST_F(LandscapeTest, ValidatesParams) {
  LandscapeParams bad = mnist_landscape();
  bad.floor_error = 0.95;  // above chance
  EXPECT_THROW(ErrorLandscape(mnist_, bad), std::invalid_argument);
  bad = mnist_landscape();
  bad.total_epochs = 0;
  EXPECT_THROW(ErrorLandscape(mnist_, bad), std::invalid_argument);
}

TEST_F(LandscapeTest, DeterministicPerConfigAndSeed) {
  const auto c = mnist_config();
  EXPECT_DOUBLE_EQ(mnist_land_.final_error(c, 1), mnist_land_.final_error(c, 1));
  EXPECT_NE(mnist_land_.final_error(c, 1), mnist_land_.final_error(c, 2));
}

TEST_F(LandscapeTest, ErrorsWithinPhysicalRange) {
  stats::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto c = mnist_.space().sample(rng);
    const double e = mnist_land_.final_error(c, 7);
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
}

TEST_F(LandscapeTest, HighEffectiveLearningRateDiverges) {
  // lr 0.1 with momentum 0.95: effective lr = 2.0 >> threshold.
  EXPECT_TRUE(mnist_land_.diverges(mnist_config(0.1, 0.95), 1));
  // lr 0.002 with momentum 0.8: effective lr = 0.01, safe.
  EXPECT_FALSE(mnist_land_.diverges(mnist_config(0.002, 0.8), 1));
}

TEST_F(LandscapeTest, DivergedConfigsSitAtChanceLevel) {
  const auto c = mnist_config(0.1, 0.95);
  ASSERT_TRUE(mnist_land_.diverges(c, 1));
  EXPECT_GE(mnist_land_.final_error(c, 1), 0.8);
}

TEST_F(LandscapeTest, DivergenceRateInPaperRegime) {
  // A noticeable chunk of the space diverges (motivating early
  // termination), but not the majority.
  stats::Rng rng(5);
  int diverged = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    if (cifar_land_.diverges(cifar_.space().sample(rng), 11)) ++diverged;
  }
  const double rate = static_cast<double>(diverged) / n;
  EXPECT_GT(rate, 0.10);
  EXPECT_LT(rate, 0.45);
}

TEST_F(LandscapeTest, BiggerNetworksAreMoreAccurate) {
  // At fixed good training params, CIFAR error decreases with capacity.
  core::Configuration small{20, 3, 2, 20, 3, 2, 20, 3, 2, 200, 0.01, 0.8, 0.001};
  core::Configuration large{80, 3, 2, 80, 3, 2, 80, 3, 2, 700, 0.01, 0.8, 0.001};
  EXPECT_GT(cifar_land_.log10_capacity(large),
            cifar_land_.log10_capacity(small));
  EXPECT_LT(cifar_land_.final_error(large, 1),
            cifar_land_.final_error(small, 1));
}

TEST_F(LandscapeTest, LearningRateTuningMatters) {
  const double tuned = mnist_land_.final_error(mnist_config(0.015, 0.85), 1);
  const double detuned = mnist_land_.final_error(mnist_config(0.001, 0.85), 1);
  EXPECT_LT(tuned, detuned);
}

TEST_F(LandscapeTest, MnistFloorsNearPaperBestError) {
  // The paper's best MNIST error is ~0.79-0.81%; a well-tuned config must
  // land close to that regime.
  const double e = mnist_land_.final_error(mnist_config(0.005, 0.9, 60.0), 1);
  EXPECT_LT(e, 0.02);
  EXPECT_GT(e, 0.005);
}

TEST_F(LandscapeTest, CifarFloorsNearPaperBestError) {
  // Paper CIFAR-10 best ~21.8%.
  core::Configuration good{70, 3, 2, 70, 3, 2, 70, 3, 1,
                           650, 0.012, 0.9, 0.001};
  const double e = cifar_land_.final_error(good, 1);
  EXPECT_LT(e, 0.26);
  EXPECT_GT(e, 0.19);
}

TEST_F(LandscapeTest, LearningCurveDecaysToFinalError) {
  const auto c = mnist_config();
  ASSERT_FALSE(mnist_land_.diverges(c, 1));
  const auto curve = mnist_land_.learning_curve(c, 1);
  ASSERT_EQ(curve.size(), mnist_landscape().total_epochs);
  // Starts near chance, ends near the final error.
  EXPECT_GT(curve.front(), 0.5);
  EXPECT_NEAR(curve.back(), mnist_land_.final_error(c, 1), 0.01);
  // Roughly monotone decreasing (tolerate small noise wobbles).
  int increases = 0;
  for (std::size_t e = 1; e < curve.size(); ++e) {
    if (curve[e] > curve[e - 1] + 0.02) ++increases;
  }
  EXPECT_LE(increases, 2);
}

TEST_F(LandscapeTest, DivergingCurveStaysAtChance) {
  const auto c = mnist_config(0.1, 0.95);
  ASSERT_TRUE(mnist_land_.diverges(c, 1));
  const auto curve = mnist_land_.learning_curve(c, 1);
  for (double e : curve) EXPECT_GE(e, 0.8);
}

TEST_F(LandscapeTest, EarlyEpochsSeparateDivergersFromConvergers) {
  // The basis of Figure 3 (right): after 2-3 epochs a diverging config
  // reads at chance while a converging one has clearly dropped.
  const auto diverging = mnist_config(0.1, 0.95);
  const auto converging = mnist_config(0.01, 0.85);
  const double d2 = mnist_land_.error_at_epoch(diverging, 2, 1);
  const double c2 = mnist_land_.error_at_epoch(converging, 2, 1);
  EXPECT_GT(d2, 0.8);
  EXPECT_LT(c2, 0.7);
}

TEST_F(LandscapeTest, CapacityMeasureTracksWeights) {
  const auto c = mnist_config();
  const nn::CnnSpec spec = mnist_.to_cnn_spec(c);
  const double expected =
      std::log10(static_cast<double>(nn::compute_workload(spec).total_weights));
  EXPECT_NEAR(mnist_land_.log10_capacity(c), expected, 1e-12);
}

}  // namespace
}  // namespace hp::testbed
