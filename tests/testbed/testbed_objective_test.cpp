#include "testbed/testbed_objective.hpp"

#include <gtest/gtest.h>

namespace hp::testbed {
namespace {

class TestbedObjectiveTest : public ::testing::Test {
 protected:
  TestbedObjectiveTest()
      : problem_(core::mnist_problem()),
        objective_(problem_, mnist_landscape(), hw::gtx1070(),
                   calibrated_options("mnist", hw::gtx1070())) {}

  core::Configuration converging() const {
    return {50.0, 3.0, 2.0, 400.0, 0.01, 0.85};
  }
  core::Configuration diverging() const {
    return {50.0, 3.0, 2.0, 400.0, 0.1, 0.95};
  }

  core::BenchmarkProblem problem_;
  TestbedObjective objective_;
};

TEST_F(TestbedObjectiveTest, CompletedEvaluationCarriesMeasurements) {
  const auto r = objective_.evaluate(converging(), nullptr);
  EXPECT_EQ(r.status, core::EvaluationStatus::Completed);
  EXPECT_FALSE(r.diverged);
  EXPECT_GT(r.test_error, 0.0);
  EXPECT_LT(r.test_error, 0.1);
  ASSERT_TRUE(r.measured_power_w.has_value());
  EXPECT_GT(*r.measured_power_w, 40.0);
  ASSERT_TRUE(r.measured_memory_mb.has_value());  // GTX has the counter
  EXPECT_GT(r.cost_s, 60.0);
}

TEST_F(TestbedObjectiveTest, ClockAdvancesByCost) {
  const double before = objective_.clock().now_s();
  const auto r = objective_.evaluate(converging(), nullptr);
  EXPECT_NEAR(objective_.clock().now_s() - before, r.cost_s, 1e-9);
}

TEST_F(TestbedObjectiveTest, EarlyTerminationCatchesDivergers) {
  const core::EarlyTerminationRule rule;
  const auto r = objective_.evaluate(diverging(), &rule);
  EXPECT_EQ(r.status, core::EvaluationStatus::EarlyTerminated);
  EXPECT_TRUE(r.diverged);
  EXPECT_GE(r.test_error, 0.8);
  // Cost is a small fraction of a full training.
  const double full = objective_.training_time_s(diverging());
  EXPECT_LT(r.cost_s, full * 0.25);
  // No measurement happens for discarded candidates.
  EXPECT_FALSE(r.measured_power_w.has_value());
}

TEST_F(TestbedObjectiveTest, EarlyTerminationSparesConvergers) {
  const core::EarlyTerminationRule rule;
  const auto r = objective_.evaluate(converging(), &rule);
  EXPECT_EQ(r.status, core::EvaluationStatus::Completed);
}

TEST_F(TestbedObjectiveTest, ExhaustiveModePaysFullCostForDivergers) {
  const auto r = objective_.evaluate(diverging(), nullptr);
  EXPECT_EQ(r.status, core::EvaluationStatus::Completed);
  EXPECT_TRUE(r.diverged);
  EXPECT_GE(r.cost_s, objective_.training_time_s(diverging()));
}

TEST_F(TestbedObjectiveTest, TrainingTimeScalesWithWorkload) {
  const core::Configuration small{20.0, 2.0, 3.0, 200.0, 0.01, 0.85};
  const core::Configuration large{80.0, 5.0, 1.0, 700.0, 0.01, 0.85};
  EXPECT_GT(objective_.training_time_s(large),
            objective_.training_time_s(small) * 2.0);
}

TEST_F(TestbedObjectiveTest, MeasureMatchesSimulatorGroundTruth) {
  const auto m = objective_.measure(converging());
  const nn::CnnSpec spec = problem_.to_cnn_spec(converging());
  const double truth =
      objective_.simulator().cost_model().evaluate(spec).average_power_w;
  EXPECT_NEAR(m.power_w, truth, truth * 0.02);
  ASSERT_TRUE(m.memory_mb.has_value());
}

TEST_F(TestbedObjectiveTest, MeasurementIsReplayPure) {
  // A measurement is a pure function of (seeds, spec): evaluating other
  // configurations in between must not shift the sensor streams — the
  // property journal replay (which skips already-evaluated networks)
  // depends on.
  const auto first = objective_.evaluate(converging(), nullptr);
  const core::Configuration other{30.0, 5.0, 1.0, 200.0, 0.01, 0.85};
  (void)objective_.evaluate(other, nullptr);
  const auto again = objective_.evaluate(converging(), nullptr);
  EXPECT_EQ(first.measured_power_w, again.measured_power_w);
  EXPECT_EQ(first.measured_memory_mb, again.measured_memory_mb);
}

TEST_F(TestbedObjectiveTest, SequentialAndDetachedMeasurementsAgree) {
  const auto sequential = objective_.evaluate(converging(), nullptr);
  const auto detached = objective_.evaluate_detached(converging(), nullptr);
  EXPECT_EQ(sequential.measured_power_w, detached.measured_power_w);
  EXPECT_EQ(sequential.measured_memory_mb, detached.measured_memory_mb);
  EXPECT_EQ(sequential.test_error, detached.test_error);
  EXPECT_EQ(sequential.cost_s, detached.cost_s);
}

TEST_F(TestbedObjectiveTest, SensorFallbackPredictsAndFlagsUnmeasured) {
  TestbedOptions opt = calibrated_options("mnist", hw::gtx1070());
  opt.sensor_faults.failure_rate = 1.0;  // every read fails
  opt.sensor_faults.fail_memory = true;
  opt.sensor_fallback_after = 2;
  TestbedObjective faulty(problem_, mnist_landscape(), hw::gtx1070(), opt);
  // No fallback model installed: the dark sensor is a transient error the
  // resilience layer would retry.
  EXPECT_THROW((void)faulty.evaluate(converging(), nullptr), hw::SensorError);
  const core::HardwareModel power(core::ModelForm::Linear,
                                  linalg::Vector{0.5, 1.0, -1.0, 0.02}, 40.0,
                                  2.0);
  const core::HardwareModel memory(core::ModelForm::Linear,
                                   linalg::Vector{2.0, 5.0, -3.0, 0.5}, 500.0,
                                   20.0);
  faulty.set_fallback_models(&power, &memory);
  const auto r = faulty.evaluate(converging(), nullptr);
  EXPECT_EQ(r.status, core::EvaluationStatus::Completed);
  EXPECT_FALSE(r.measured);
  const nn::CnnSpec spec = problem_.to_cnn_spec(converging());
  const std::vector<double> z = spec.structural_vector();
  ASSERT_TRUE(r.measured_power_w.has_value());
  EXPECT_DOUBLE_EQ(*r.measured_power_w, power.predict(z));
  ASSERT_TRUE(r.measured_memory_mb.has_value());
  EXPECT_DOUBLE_EQ(*r.measured_memory_mb, memory.predict(z));
}

TEST_F(TestbedObjectiveTest, IsolatedSensorGlitchesKeepMeasuredFlag) {
  TestbedOptions opt = calibrated_options("mnist", hw::gtx1070());
  opt.sensor_faults.failure_rate = 0.2;
  opt.sensor_fallback_after = 0;  // skip failures, never degrade
  TestbedObjective flaky(problem_, mnist_landscape(), hw::gtx1070(), opt);
  const auto r = flaky.evaluate(converging(), nullptr);
  EXPECT_EQ(r.status, core::EvaluationStatus::Completed);
  EXPECT_TRUE(r.measured);
  ASSERT_TRUE(r.measured_power_w.has_value());
}

TEST_F(TestbedObjectiveTest, RunSeedChangesOutcome) {
  const auto a = objective_.evaluate(converging(), nullptr);
  objective_.set_run_seed(999);
  const auto b = objective_.evaluate(converging(), nullptr);
  EXPECT_NE(a.test_error, b.test_error);
}

TEST(TestbedObjectiveCifar, InfeasibleArchitectureCheapAndFlagged) {
  const auto problem = core::cifar10_problem();
  TestbedObjective objective(problem, cifar10_landscape(), hw::gtx1070(),
                             calibrated_options("cifar10", hw::gtx1070()));
  // Three large kernels and max pooling collapse 32x32 to nothing.
  const core::Configuration bad{20, 5, 3, 20, 5, 3, 20, 5, 3,
                                200, 0.01, 0.85, 0.001};
  ASSERT_FALSE(nn::is_feasible(problem.to_cnn_spec(bad)));
  const auto r = objective.evaluate(bad, nullptr);
  EXPECT_EQ(r.status, core::EvaluationStatus::InfeasibleArchitecture);
  EXPECT_LT(r.cost_s, 10.0);
}

TEST(TestbedObjectiveTegra, NoMemoryMeasurementOnTegra) {
  const auto problem = core::mnist_problem();
  TestbedObjective objective(problem, mnist_landscape(), hw::tegra_tx1(),
                             calibrated_options("mnist", hw::tegra_tx1()));
  const core::Configuration c{50.0, 3.0, 2.0, 400.0, 0.01, 0.85};
  const auto r = objective.evaluate(c, nullptr);
  ASSERT_TRUE(r.measured_power_w.has_value());
  EXPECT_LT(*r.measured_power_w, 16.0);  // Tegra envelope
  EXPECT_FALSE(r.measured_memory_mb.has_value());
}

TEST(TestbedCalibration, PaperWallClockRegime) {
  // Exhaustive random search should land near the paper's ~14 samples in
  // 2 hours on MNIST (Table 4); we check the mean full-training cost is in
  // the right ballpark (several minutes).
  const auto problem = core::mnist_problem();
  TestbedObjective objective(problem, mnist_landscape(), hw::gtx1070(),
                             calibrated_options("mnist", hw::gtx1070()));
  stats::Rng rng(3);
  double total = 0.0;
  int n = 0;
  for (int i = 0; i < 100; ++i) {
    const auto c = problem.space().sample(rng);
    if (!nn::is_feasible(problem.to_cnn_spec(c))) continue;
    total += objective.training_time_s(c);
    ++n;
  }
  const double mean_s = total / n;
  EXPECT_GT(mean_s, 150.0);
  EXPECT_LT(mean_s, 900.0);
}

TEST(TestbedOptions, ValidatesBaseTime) {
  TestbedOptions opt;
  opt.base_training_time_s = 0.0;
  EXPECT_THROW(TestbedObjective(core::mnist_problem(), mnist_landscape(),
                                hw::gtx1070(), opt),
               std::invalid_argument);
}

TEST(TestbedOptions, CalibratedOptionsDifferByDeviceAndDataset) {
  const auto mnist_gtx = calibrated_options("mnist", hw::gtx1070());
  const auto cifar_gtx = calibrated_options("cifar10", hw::gtx1070());
  const auto mnist_tx1 = calibrated_options("mnist", hw::tegra_tx1());
  EXPECT_GT(cifar_gtx.base_training_time_s, mnist_gtx.base_training_time_s);
  EXPECT_GT(mnist_tx1.base_training_time_s, mnist_gtx.base_training_time_s);
}

}  // namespace
}  // namespace hp::testbed
