#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace hp::stats {
namespace {

TEST(NormalPdf, StandardValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-12);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-15);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.959963984540054), 0.025, 1e-9);
  EXPECT_NEAR(normal_cdf(6.0), 1.0, 1e-9);
  EXPECT_NEAR(normal_cdf(-6.0), 0.0, 1e-9);
}

TEST(NormalCdf, Monotone) {
  double prev = 0.0;
  for (double x = -5.0; x <= 5.0; x += 0.1) {
    const double c = normal_cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-8);
}

TEST(NormalQuantile, OutOfDomainThrows) {
  EXPECT_THROW((void)normal_quantile(0.0), std::domain_error);
  EXPECT_THROW((void)normal_quantile(1.0), std::domain_error);
  EXPECT_THROW((void)normal_quantile(-0.2), std::domain_error);
}

class QuantileRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(QuantileRoundTrip, QuantileThenCdf) {
  const double p = GetParam();
  EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, QuantileRoundTrip,
                         ::testing::Values(1e-6, 1e-4, 0.02, 0.2, 0.4, 0.6,
                                           0.8, 0.98, 1.0 - 1e-4, 1.0 - 1e-6));

TEST(ExpectedImprovement, ZeroVarianceDegeneratesToHinge) {
  EXPECT_DOUBLE_EQ(expected_improvement(0.5, 0.0, 0.7), 0.2);
  EXPECT_DOUBLE_EQ(expected_improvement(0.9, 0.0, 0.7), 0.0);
}

TEST(ExpectedImprovement, MatchesNumericalIntegration) {
  // EI = integral of max(best - y, 0) * N(y; mean, sd^2) dy.
  const double mean = 0.3, sd = 0.2, best = 0.35;
  double acc = 0.0;
  const int n = 200000;
  const double lo = mean - 8 * sd, hi = mean + 8 * sd;
  const double dy = (hi - lo) / n;
  for (int i = 0; i < n; ++i) {
    const double y = lo + (i + 0.5) * dy;
    const double density = normal_pdf((y - mean) / sd) / sd;
    acc += std::max(best - y, 0.0) * density * dy;
  }
  EXPECT_NEAR(expected_improvement(mean, sd, best), acc, 1e-6);
}

TEST(ExpectedImprovement, IncreasesWithUncertainty) {
  const double a = expected_improvement(0.5, 0.1, 0.4);
  const double b = expected_improvement(0.5, 0.3, 0.4);
  EXPECT_GT(b, a);
}

TEST(ExpectedImprovement, DecreasesAsMeanWorsens) {
  const double a = expected_improvement(0.4, 0.1, 0.5);
  const double b = expected_improvement(0.6, 0.1, 0.5);
  EXPECT_GT(a, b);
}

TEST(ExpectedImprovement, AlwaysNonNegative) {
  for (double mean : {-1.0, 0.0, 2.0}) {
    for (double sd : {0.0, 0.01, 1.0}) {
      for (double best : {-2.0, 0.0, 1.0}) {
        EXPECT_GE(expected_improvement(mean, sd, best), 0.0);
      }
    }
  }
}

TEST(ProbabilityBelow, GaussianCase) {
  EXPECT_NEAR(probability_below(0.0, 1.0, 0.0), 0.5, 1e-12);
  EXPECT_GT(probability_below(0.0, 1.0, 1.0), 0.8);
  EXPECT_LT(probability_below(0.0, 1.0, -1.0), 0.2);
}

TEST(ProbabilityBelow, DegenerateStep) {
  EXPECT_EQ(probability_below(5.0, 0.0, 5.0), 1.0);
  EXPECT_EQ(probability_below(5.0, 0.0, 4.999), 0.0);
}

}  // namespace
}  // namespace hp::stats
