#include "stats/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace hp::stats {
namespace {

TEST(Metrics, RmseHandValue) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> p{1.0, 2.0, 5.0};
  EXPECT_NEAR(rmse(a, p), std::sqrt(4.0 / 3.0), 1e-12);
}

TEST(Metrics, RmseZeroForPerfectPrediction) {
  const std::vector<double> a{1.0, -2.0};
  EXPECT_EQ(rmse(a, a), 0.0);
}

TEST(Metrics, RmspeHandValue) {
  // Errors of 10% and 20% -> sqrt((0.01 + 0.04)/2)*100.
  const std::vector<double> a{100.0, 100.0};
  const std::vector<double> p{110.0, 80.0};
  EXPECT_NEAR(rmspe(a, p), 100.0 * std::sqrt(0.025), 1e-9);
}

TEST(Metrics, RmspeZeroActualThrows) {
  EXPECT_THROW((void)rmspe(std::vector<double>{0.0}, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Metrics, MapeHandValue) {
  const std::vector<double> a{100.0, 200.0};
  const std::vector<double> p{110.0, 180.0};
  EXPECT_NEAR(mape(a, p), 10.0, 1e-12);
}

TEST(Metrics, MaeHandValue) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> p{2.0, 2.0, 1.0};
  EXPECT_NEAR(mae(a, p), 1.0, 1e-12);
}

TEST(Metrics, RSquaredPerfectIsOne) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(a, a), 1.0);
}

TEST(Metrics, RSquaredMeanPredictorIsZero) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> p{2.0, 2.0, 2.0};
  EXPECT_NEAR(r_squared(a, p), 0.0, 1e-12);
}

TEST(Metrics, RSquaredWorseThanMeanIsNegative) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> p{3.0, 2.0, 1.0};
  EXPECT_LT(r_squared(a, p), 0.0);
}

TEST(Metrics, SizeMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> p{1.0, 2.0};
  EXPECT_THROW((void)rmse(a, p), std::invalid_argument);
  EXPECT_THROW((void)rmspe(a, p), std::invalid_argument);
  EXPECT_THROW((void)mape(a, p), std::invalid_argument);
  EXPECT_THROW((void)mae(a, p), std::invalid_argument);
  EXPECT_THROW((void)r_squared(a, p), std::invalid_argument);
}

TEST(Metrics, EmptyThrows) {
  const std::vector<double> e;
  EXPECT_THROW((void)rmse(e, e), std::invalid_argument);
  EXPECT_THROW((void)rmspe(e, e), std::invalid_argument);
}

TEST(Metrics, RmspeScaleInvariance) {
  // RMSPE is invariant to a common scale on actual+predicted.
  const std::vector<double> a{50.0, 80.0, 120.0};
  const std::vector<double> p{55.0, 75.0, 130.0};
  std::vector<double> a2, p2;
  for (double x : a) a2.push_back(10.0 * x);
  for (double x : p) p2.push_back(10.0 * x);
  EXPECT_NEAR(rmspe(a, p), rmspe(a2, p2), 1e-10);
}

}  // namespace
}  // namespace hp::stats
