#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace hp::stats {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformDegenerateRangeReturnsLo) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform(3.0, 3.0), 3.0);
}

TEST(Rng, UniformInvertedRangeThrows) {
  Rng rng(5);
  EXPECT_THROW((void)rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(1, 3);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // hits all values
}

TEST(Rng, UniformIntInvertedThrows) {
  Rng rng(6);
  EXPECT_THROW((void)rng.uniform_int(3, 1), std::invalid_argument);
}

TEST(Rng, GaussianMomentsRoughlyCorrect) {
  Rng rng(7);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, GaussianScaledMeanSd) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, GaussianZeroSdIsDeterministic) {
  Rng rng(9);
  EXPECT_EQ(rng.gaussian(5.0, 0.0), 5.0);
}

TEST(Rng, GaussianNegativeSdThrows) {
  Rng rng(9);
  EXPECT_THROW((void)rng.gaussian(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(10);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW((void)rng.bernoulli(1.5), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ChildStreamsAreIndependentAndDeterministic) {
  Rng parent1(12);
  Rng parent2(12);
  Rng c1 = parent1.child(1);
  Rng c2 = parent2.child(1);
  EXPECT_DOUBLE_EQ(c1.uniform(), c2.uniform());
  Rng p3(12);
  Rng other = p3.child(2);
  EXPECT_NE(c1.uniform(), other.uniform());
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(13);
  const auto perm = rng.permutation(20);
  ASSERT_EQ(perm.size(), 20u);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 20u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 19u);
}

TEST(Rng, PermutationOfZeroAndOne) {
  Rng rng(14);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto one = rng.permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(Rng, PermutationShuffles) {
  Rng rng(15);
  const auto a = rng.permutation(50);
  const auto b = rng.permutation(50);
  EXPECT_NE(a, b);
}

TEST(Splitmix64, DeterministicAndMixing) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_NE(splitmix64(0), splitmix64(1));
  // Adjacent inputs map far apart (avalanche sanity check).
  const std::uint64_t d = splitmix64(100) ^ splitmix64(101);
  int bits = 0;
  for (int i = 0; i < 64; ++i) bits += (d >> i) & 1u;
  EXPECT_GT(bits, 10);
}

}  // namespace
}  // namespace hp::stats
