#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace hp::stats {
namespace {

TEST(RunningStats, EmptyThrows) {
  RunningStats rs;
  EXPECT_TRUE(rs.empty());
  EXPECT_THROW((void)rs.mean(), std::logic_error);
  EXPECT_THROW((void)rs.min(), std::logic_error);
  EXPECT_THROW((void)rs.max(), std::logic_error);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(3.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 3.0);
  EXPECT_DOUBLE_EQ(rs.max(), 3.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 6.2);
  // Sample variance computed by hand: sum((x-6.2)^2)/4.
  double ss = 0.0;
  for (double x : xs) ss += (x - 6.2) * (x - 6.2);
  EXPECT_NEAR(rs.variance(), ss / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.stddev(), std::sqrt(ss / 4.0));
}

TEST(RunningStats, MergeEquivalentToSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 10; i < 25; ++i) {
    b.add(i * 1.5);
    all.add(i * 1.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Descriptive, MeanAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(xs), 4.0);
  EXPECT_DOUBLE_EQ(sample_stddev(xs), 2.0);
}

TEST(Descriptive, MeanEmptyThrows) {
  EXPECT_THROW((void)mean(std::vector<double>{}), std::logic_error);
}

TEST(Descriptive, GeometricMean) {
  const std::vector<double> xs{1.0, 4.0, 16.0};
  EXPECT_NEAR(geometric_mean(xs), 4.0, 1e-12);
}

TEST(Descriptive, GeometricMeanRejectsNonPositive) {
  EXPECT_THROW((void)geometric_mean(std::vector<double>{1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)geometric_mean(std::vector<double>{-1.0}),
               std::invalid_argument);
}

TEST(Descriptive, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Descriptive, QuantileValidation) {
  EXPECT_THROW((void)quantile({}, 0.5), std::logic_error);
  EXPECT_THROW((void)quantile({1.0}, 1.5), std::invalid_argument);
}

TEST(Descriptive, PearsonCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson_correlation(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson_correlation(xs, neg), -1.0, 1e-12);
}

TEST(Descriptive, PearsonDegenerateIsZero) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_EQ(pearson_correlation(xs, ys), 0.0);
  EXPECT_EQ(pearson_correlation(std::vector<double>{1.0},
                                std::vector<double>{2.0}),
            0.0);
}

TEST(Descriptive, PearsonSizeMismatchThrows) {
  EXPECT_THROW((void)pearson_correlation(std::vector<double>{1.0},
                                         std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace hp::stats
