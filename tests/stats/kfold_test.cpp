#include "stats/kfold.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

namespace hp::stats {
namespace {

TEST(KFold, InvalidArgumentsThrow) {
  EXPECT_THROW((void)kfold_splits(10, 1, 0), std::invalid_argument);
  EXPECT_THROW((void)kfold_splits(5, 6, 0), std::invalid_argument);
}

TEST(KFold, DeterministicForSeed) {
  const auto a = kfold_splits(20, 4, 7);
  const auto b = kfold_splits(20, 4, 7);
  for (std::size_t f = 0; f < 4; ++f) {
    EXPECT_EQ(a[f].validation_indices, b[f].validation_indices);
    EXPECT_EQ(a[f].train_indices, b[f].train_indices);
  }
}

TEST(KFold, DifferentSeedsShuffleDifferently) {
  const auto a = kfold_splits(50, 5, 1);
  const auto b = kfold_splits(50, 5, 2);
  EXPECT_NE(a[0].validation_indices, b[0].validation_indices);
}

class KFoldParam
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(KFoldParam, FoldsPartitionTheSamples) {
  const auto [n, k] = GetParam();
  const auto folds = kfold_splits(n, k, 42);
  ASSERT_EQ(folds.size(), k);

  // Validation sets are disjoint and cover 0..n-1.
  std::set<std::size_t> all_validation;
  for (const Fold& f : folds) {
    for (std::size_t idx : f.validation_indices) {
      EXPECT_TRUE(all_validation.insert(idx).second)
          << "duplicate validation index " << idx;
    }
  }
  EXPECT_EQ(all_validation.size(), n);
  EXPECT_EQ(*all_validation.rbegin(), n - 1);

  for (const Fold& f : folds) {
    // Train + validation of each fold = everything, disjointly.
    EXPECT_EQ(f.train_indices.size() + f.validation_indices.size(), n);
    std::set<std::size_t> train(f.train_indices.begin(),
                                f.train_indices.end());
    for (std::size_t idx : f.validation_indices) {
      EXPECT_EQ(train.count(idx), 0u);
    }
    // Fold sizes balanced within one.
    EXPECT_LE(f.validation_indices.size(), n / k + 1);
    EXPECT_GE(f.validation_indices.size(), n / k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KFoldParam,
    ::testing::Values(std::pair<std::size_t, std::size_t>{10, 2},
                      std::pair<std::size_t, std::size_t>{10, 10},
                      std::pair<std::size_t, std::size_t>{23, 5},
                      std::pair<std::size_t, std::size_t>{100, 10},
                      std::pair<std::size_t, std::size_t>{101, 10},
                      std::pair<std::size_t, std::size_t>{7, 3}));

}  // namespace
}  // namespace hp::stats
