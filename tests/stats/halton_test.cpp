#include "stats/halton.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace hp::stats {
namespace {

TEST(Halton, InvalidDimensionsThrow) {
  EXPECT_THROW(HaltonSequence(0, 1), std::invalid_argument);
  EXPECT_THROW(HaltonSequence(33, 1), std::invalid_argument);
}

TEST(Halton, PointsInUnitCube) {
  HaltonSequence seq(5, 3);
  for (const auto& p : seq.take(200)) {
    ASSERT_EQ(p.size(), 5u);
    for (double x : p) {
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
}

TEST(Halton, DeterministicForSeed) {
  HaltonSequence a(3, 9);
  HaltonSequence b(3, 9);
  const auto pa = a.take(10);
  const auto pb = b.take(10);
  EXPECT_EQ(pa, pb);
}

TEST(Halton, DifferentSeedsScrambleDifferently) {
  HaltonSequence a(3, 1);
  HaltonSequence b(3, 2);
  // Base 2 permutation of {0,1} is fixed (identity on nonzero digit can
  // only swap with itself), so compare higher dimensions.
  const auto pa = a.take(20);
  const auto pb = b.take(20);
  bool any_diff = false;
  for (std::size_t i = 0; i < 20 && !any_diff; ++i) {
    for (std::size_t d = 1; d < 3; ++d) {
      if (pa[i][d] != pb[i][d]) any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Halton, CoversSpaceBetterThanClumping) {
  // Low-discrepancy sanity: with 64 points in 1-D (base 2), each of the 8
  // equal bins must contain exactly 8 points.
  HaltonSequence seq(1, 5);
  std::vector<int> bins(8, 0);
  for (const auto& p : seq.take(64)) {
    ++bins[static_cast<std::size_t>(p[0] * 8.0)];
  }
  for (int count : bins) EXPECT_EQ(count, 8);
}

TEST(Halton, MeanNearHalf) {
  HaltonSequence seq(4, 11);
  std::vector<double> sums(4, 0.0);
  const std::size_t n = 500;
  for (const auto& p : seq.take(n)) {
    for (std::size_t d = 0; d < 4; ++d) sums[d] += p[d];
  }
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_NEAR(sums[d] / static_cast<double>(n), 0.5, 0.05) << "dim " << d;
  }
}

TEST(Halton, TakeReturnsRequestedCount) {
  HaltonSequence seq(2, 1);
  EXPECT_EQ(seq.take(0).size(), 0u);
  EXPECT_EQ(seq.take(17).size(), 17u);
}

TEST(Halton, SequentialNextMatchesTake) {
  HaltonSequence a(2, 13);
  HaltonSequence b(2, 13);
  const auto points = a.take(5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(points[static_cast<std::size_t>(i)], b.next());
  }
}

}  // namespace
}  // namespace hp::stats
