// compile-fail case: a path that returns with the mutex still held. Must
// be rejected by -Werror=thread-safety with a diagnostic matching "still
// held at the end of function"; if this compiles, the acquire/release
// matching of core/thread_annotations.hpp is no longer enforced — exactly
// the class of bug hp::MutexLock exists to make impossible.
#include "core/thread_annotations.hpp"

namespace {

hp::Mutex g_mutex;
int g_value HP_GUARDED_BY(g_mutex) = 0;

// BAD: the early return leaks the lock (manual lock/unlock instead of
// hp::MutexLock).
void set_if(bool flag, int v) {
  g_mutex.lock();
  if (flag) return;
  g_value = v;
  g_mutex.unlock();
}

}  // namespace

void touch_set_if(bool flag) { set_if(flag, 1); }
