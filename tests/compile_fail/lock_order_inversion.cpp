// compile-fail case: acquiring two mutexes against their declared
// HP_ACQUIRED_BEFORE order — the compile-time form of a deadlock. Must be
// rejected by -Werror=thread-safety-beta (the acquired_before/after checks
// live in the beta group) with a diagnostic matching "must be acquired";
// if this compiles, declared lock hierarchies (e.g. Logger's
// dispatch_mutex_ -> mutex_ edge, DESIGN.md §14) are no longer enforced.
#include "core/thread_annotations.hpp"

namespace {

hp::Mutex g_inner;
hp::Mutex g_outer HP_ACQUIRED_BEFORE(g_inner);

void correct_order() {
  hp::MutexLock outer(g_outer);
  hp::MutexLock inner(g_inner);
}

// BAD: takes the inner lock first — inverted against the declared edge.
void inverted_order() {
  hp::MutexLock inner(g_inner);
  hp::MutexLock outer(g_outer);
}

}  // namespace

void touch_order() {
  correct_order();
  inverted_order();
}
