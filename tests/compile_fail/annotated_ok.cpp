// Positive control for the compile-fail harness: a correctly annotated
// use of every primitive the bad cases abuse — guarded fields behind
// hp::MutexLock, an HP_REQUIRES helper, a CondVar wait loop, and locks
// taken in declared order. MUST compile clean under the exact flag set
// that rejects the *.cpp cases next to it; if it fails, the harness is
// broken (bad include path, misconfigured flags) and the "expected"
// failures of the other cases prove nothing.
#include "core/thread_annotations.hpp"

namespace {

hp::Mutex g_inner;
hp::Mutex g_outer HP_ACQUIRED_BEFORE(g_inner);
int g_shared HP_GUARDED_BY(g_outer) = 0;

class Queue {
 public:
  void push(int v) {
    hp::MutexLock lock(mutex_);
    value_ = v;
    has_value_ = true;
    cv_.notify_one();
  }

  [[nodiscard]] int pop() {
    hp::MutexLock lock(mutex_);
    while (!has_value_) cv_.wait(mutex_);
    has_value_ = false;
    return value_;
  }

 private:
  hp::Mutex mutex_;
  hp::CondVar cv_;
  int value_ HP_GUARDED_BY(mutex_) = 0;
  bool has_value_ HP_GUARDED_BY(mutex_) = false;
};

void bump_locked() HP_REQUIRES(g_outer) { ++g_shared; }

void ordered_pair() {
  hp::MutexLock outer(g_outer);
  bump_locked();
  hp::MutexLock inner(g_inner);
}

}  // namespace

int touch_ok() {
  ordered_pair();
  Queue queue;
  queue.push(1);
  return queue.pop();
}
