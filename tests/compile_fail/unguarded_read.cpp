// compile-fail case: reading an HP_GUARDED_BY field without holding its
// mutex. Must be rejected by -Werror=thread-safety with a diagnostic
// matching "requires holding mutex" (see CMakeLists.txt in this
// directory); if this snippet ever compiles, the guarded-access contract
// of core/thread_annotations.hpp has silently stopped being enforced.
#include "core/thread_annotations.hpp"

namespace {

class Account {
 public:
  // BAD: reads guarded state with no lock held.
  [[nodiscard]] int balance() const { return value_; }

  void deposit(int amount) {
    hp::MutexLock lock(mutex_);
    value_ += amount;
  }

 private:
  mutable hp::Mutex mutex_;
  int value_ HP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

// Anchor so the TU is not empty under STATIC_LIBRARY try_compile.
int touch_account() {
  Account account;
  account.deposit(1);
  return account.balance();
}
