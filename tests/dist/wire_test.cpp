#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "core/trace_io.hpp"
#include "dist/wire.hpp"

namespace hp::dist {
namespace {

core::EvaluationRecord sample_record() {
  core::EvaluationRecord record;
  record.config = {1.0 / 3.0, 0.1234567890123456, 2.0 / 7.0};
  record.status = core::EvaluationStatus::Completed;
  record.test_error = 0.0625;
  record.measured_power_w = 87.5;
  record.measured_memory_mb = 512.25;
  record.cost_s = 123.5;
  record.timestamp_s = 123.5;
  record.index = 11;
  record.attempts = 2;
  return record;
}

TEST(WireFrame, RoundTripsPayload) {
  const std::string payload = "job,7,3,1,2,0.5,0.25";
  const std::string line = encode_frame(payload);
  EXPECT_EQ(line.back(), '\n');
  const auto decoded = decode_frame(
      std::string_view(line).substr(0, line.size() - 1));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

TEST(WireFrame, RejectsTamperedLengthChecksumAndPayload) {
  const std::string line = encode_frame("result,1,r,ok");
  std::string body(line.substr(0, line.size() - 1));

  EXPECT_FALSE(decode_frame("").has_value());
  EXPECT_FALSE(decode_frame("x," + body.substr(2)).has_value());
  EXPECT_FALSE(decode_frame(body + "x").has_value());  // length mismatch
  EXPECT_FALSE(decode_frame(body.substr(0, 5)).has_value());

  // Flip one payload byte: the length still matches, the checksum must not.
  std::string corrupt = body;
  corrupt[corrupt.size() - 1] ^= 0x1;
  EXPECT_FALSE(decode_frame(corrupt).has_value());

  // Flip one checksum digit.
  std::string bad_crc = body;
  const auto crc_pos = bad_crc.find(',', 2) + 1;
  bad_crc[crc_pos] = bad_crc[crc_pos] == '0' ? '1' : '0';
  EXPECT_FALSE(decode_frame(bad_crc).has_value());
}

TEST(WireJob, RoundTripsConfigBitExactly) {
  JobRequest job;
  job.job_id = 42;
  job.sample_index = 17;
  job.dispatch_attempt = 3;
  job.config = {1.0 / 3.0, 0.1234567890123456, 1e-17};
  const auto parsed = parse_job(encode_job(job));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->job_id, 42u);
  EXPECT_EQ(parsed->sample_index, 17u);
  EXPECT_EQ(parsed->dispatch_attempt, 3u);
  EXPECT_EQ(parsed->config, job.config);  // bit-exact doubles
}

TEST(WireJob, RejectsMalformedPayloads) {
  EXPECT_FALSE(parse_job("").has_value());
  EXPECT_FALSE(parse_job("job").has_value());
  EXPECT_FALSE(parse_job("job,1,2").has_value());
  EXPECT_FALSE(parse_job("job,1,2,1,3,0.5").has_value());  // dim mismatch
  EXPECT_FALSE(parse_job("job,x,2,1,1,0.5").has_value());
  EXPECT_FALSE(parse_job("result,1,whatever").has_value());
}

TEST(WireWorkerMessage, HelloAndBeatsRoundTrip) {
  const auto hello = parse_worker_message(encode_hello(1234));
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->kind, WorkerMessage::Kind::Hello);
  EXPECT_EQ(hello->pid, 1234);

  const auto idle = parse_worker_message(encode_beat(std::nullopt));
  ASSERT_TRUE(idle.has_value());
  EXPECT_EQ(idle->kind, WorkerMessage::Kind::Beat);
  EXPECT_FALSE(idle->job_id.has_value());

  const auto busy = parse_worker_message(encode_beat(9));
  ASSERT_TRUE(busy.has_value());
  EXPECT_EQ(busy->kind, WorkerMessage::Kind::Beat);
  ASSERT_TRUE(busy->job_id.has_value());
  EXPECT_EQ(*busy->job_id, 9u);
}

TEST(WireWorkerMessage, ResultCarriesRecordBitExactly) {
  const core::EvaluationRecord record = sample_record();
  const auto parsed = parse_worker_message(encode_result(5, record));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, WorkerMessage::Kind::Result);
  ASSERT_TRUE(parsed->job_id.has_value());
  EXPECT_EQ(*parsed->job_id, 5u);
  // The record must survive the wire byte-for-byte: re-serializing it
  // reproduces the exact line the worker sent.
  EXPECT_EQ(core::format_record_line(parsed->record),
            core::format_record_line(record));
  EXPECT_EQ(parsed->record.test_error, record.test_error);
  EXPECT_EQ(parsed->record.measured_power_w, record.measured_power_w);
  EXPECT_EQ(parsed->record.cost_s, record.cost_s);
}

TEST(WireWorkerMessage, JobErrorRoundTrips) {
  const auto parsed =
      parse_worker_message(encode_job_error(3, "allocation failed"));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, WorkerMessage::Kind::JobError);
  ASSERT_TRUE(parsed->job_id.has_value());
  EXPECT_EQ(*parsed->job_id, 3u);
  EXPECT_EQ(parsed->error, "allocation failed");
}

TEST(WireWorkerMessage, RejectsGarbage) {
  EXPECT_FALSE(parse_worker_message("").has_value());
  EXPECT_FALSE(parse_worker_message("nonsense").has_value());
  EXPECT_FALSE(parse_worker_message("hello").has_value());
  EXPECT_FALSE(parse_worker_message("hello,notapid").has_value());
  EXPECT_FALSE(parse_worker_message("beat,").has_value());
  EXPECT_FALSE(parse_worker_message("result,1").has_value());
  EXPECT_FALSE(parse_worker_message("result,1,r,not-a-record").has_value());
  EXPECT_FALSE(parse_worker_message("jerr").has_value());
}

}  // namespace
}  // namespace hp::dist
