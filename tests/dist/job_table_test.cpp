#include <gtest/gtest.h>

#include <stdexcept>

#include "dist/job_table.hpp"

namespace hp::dist {
namespace {

JobTable table_with(std::size_t n) {
  JobTable table;
  for (std::size_t i = 0; i < n; ++i) {
    table.add(i + 1, i, core::Configuration{0.5, 0.5});
  }
  return table;
}

TEST(JobTable, HappyPathLifecycle) {
  JobTable table = table_with(2);
  EXPECT_FALSE(table.all_terminal());
  ASSERT_TRUE(table.next_queued().has_value());
  EXPECT_EQ(*table.next_queued(), 1u);

  table.mark_dispatched(1, 0);
  EXPECT_EQ(table.job(1).state, JobState::Dispatched);
  EXPECT_EQ(table.job(1).dispatch_attempts, 1u);
  EXPECT_EQ(table.job(1).worker_slot, 0);
  EXPECT_EQ(*table.next_queued(), 2u);

  table.mark_running(1);
  table.mark_running(1);  // heartbeat repetition is idempotent
  EXPECT_EQ(table.job(1).state, JobState::Running);

  core::EvaluationRecord record;
  record.test_error = 0.25;
  table.mark_done(1, record);
  EXPECT_EQ(table.job(1).state, JobState::Done);
  EXPECT_EQ(table.job(1).record.test_error, 0.25);

  table.mark_dispatched(2, 1);
  table.mark_done(2, record);  // result can arrive before the first beat
  EXPECT_TRUE(table.all_terminal());
  EXPECT_FALSE(table.next_queued().has_value());
}

TEST(JobTable, LostRequeueIncrementsDispatchAttempts) {
  JobTable table = table_with(1);
  table.mark_dispatched(1, 0);
  table.mark_lost(1);
  EXPECT_EQ(table.job(1).state, JobState::Lost);
  table.requeue(1);
  EXPECT_EQ(table.job(1).state, JobState::Queued);
  ASSERT_TRUE(table.next_queued().has_value());

  table.mark_dispatched(1, 2);
  EXPECT_EQ(table.job(1).dispatch_attempts, 2u);
  table.mark_running(1);
  table.mark_lost(1);  // Running -> Lost (missed beats, blown deadline)
  core::EvaluationRecord failed;
  failed.status = core::EvaluationStatus::Failed;
  table.mark_failed(1, failed);  // Lost -> Failed when retries exhausted
  EXPECT_EQ(table.job(1).state, JobState::Failed);
  EXPECT_TRUE(table.all_terminal());
}

TEST(JobTable, IllegalTransitionsThrow) {
  JobTable table = table_with(1);
  core::EvaluationRecord record;
  // Queued jobs are not in flight: nothing to run, finish, or lose.
  EXPECT_THROW(table.mark_running(1), std::logic_error);
  EXPECT_THROW(table.mark_done(1, record), std::logic_error);
  EXPECT_THROW(table.mark_lost(1), std::logic_error);
  EXPECT_THROW(table.requeue(1), std::logic_error);

  table.mark_dispatched(1, 0);
  EXPECT_THROW(table.mark_dispatched(1, 1), std::logic_error);
  EXPECT_THROW(table.requeue(1), std::logic_error);  // only Lost requeues

  table.mark_done(1, record);
  // Terminal states are final.
  EXPECT_THROW(table.mark_running(1), std::logic_error);
  EXPECT_THROW(table.mark_lost(1), std::logic_error);
  EXPECT_THROW(table.mark_done(1, record), std::logic_error);
  EXPECT_THROW(table.mark_failed(1, record), std::logic_error);
}

TEST(JobTable, UnknownAndDuplicateIdsThrow) {
  JobTable table = table_with(1);
  EXPECT_THROW(table.mark_dispatched(99, 0), std::logic_error);
  EXPECT_THROW((void)table.job(99), std::logic_error);
  EXPECT_THROW(table.add(1, 5, core::Configuration{}), std::logic_error);
}

TEST(JobTable, StateNamesAreStable) {
  EXPECT_STREQ(to_string(JobState::Queued), "queued");
  EXPECT_STREQ(to_string(JobState::Dispatched), "dispatched");
  EXPECT_STREQ(to_string(JobState::Running), "running");
  EXPECT_STREQ(to_string(JobState::Done), "done");
  EXPECT_STREQ(to_string(JobState::Failed), "failed");
  EXPECT_STREQ(to_string(JobState::Lost), "lost");
}

}  // namespace
}  // namespace hp::dist
