// End-to-end fleet tests against the real hpo-worker binary (path baked in
// via HYPERPOWER_WORKER_BIN). The golden-trace guarantee under test: a
// fleet run — including chaos runs that SIGKILL workers mid-round — merges
// into a trace bit-identical to the in-process batched run, and the
// supervisor reaps every process it ever spawned (no zombies).

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cerrno>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cli/objective_setup.hpp"
#include "core/framework.hpp"
#include "dist/job_scheduler.hpp"
#include "dist/worker_supervisor.hpp"

namespace hp::dist {
namespace {

/// Owns the token storage behind a cli::Args (which keeps string_views of
/// argv alive only for the constructor call, but needs stable argv).
class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> tokens)
      : storage_(std::move(tokens)) {
    pointers_.push_back("test");
    for (const std::string& token : storage_) {
      pointers_.push_back(token.c_str());
    }
  }

  [[nodiscard]] cli::Args args() const {
    return cli::Args(static_cast<int>(pointers_.size()), pointers_.data());
  }

 private:
  std::vector<std::string> storage_;
  std::vector<const char*> pointers_;
};

/// The evaluation-stack flags shared by the in-process reference run and
/// the fleet workers — identical values are what makes traces comparable.
std::vector<std::string> stack_flags() {
  return {"--problem",       "tiny_mnist", "--device",        "GTX 1070",
          "--power-budget",  "90",         "--memory-budget", "720",
          "--seed",          "7"};
}

core::FrameworkOptions run_options() {
  core::FrameworkOptions options;
  options.method = core::Method::HwIeci;
  options.hyperpower_mode = true;
  options.optimizer.seed = 7;
  options.optimizer.max_function_evaluations = 10;
  options.optimizer.batch_size = 4;
  options.optimizer.num_threads = 2;
  return options;
}

std::string trace_csv(const core::FrameworkResult& result) {
  std::ostringstream os;
  result.run.trace.write_csv(os);
  return os.str();
}

std::string reference_trace() {
  const ArgvBuilder argv(stack_flags());
  const auto stack = cli::build_evaluation_stack(argv.args());
  return trace_csv(stack->framework->optimize(run_options()));
}

FleetOptions fleet_options(std::size_t workers,
                           std::vector<std::string> chaos_flags) {
  FleetOptions options;
  options.supervisor.worker_binary = HYPERPOWER_WORKER_BIN;
  options.supervisor.workers = workers;
  options.supervisor.worker_args = stack_flags();
  for (std::string& flag : chaos_flags) {
    options.supervisor.worker_args.push_back(std::move(flag));
  }
  options.heartbeat_interval_s = 0.1;
  options.supervisor.worker_args.push_back("--heartbeat-interval");
  options.supervisor.worker_args.push_back("0.1");
  // Real-seconds requeue backoff: keep retries prompt in tests.
  options.dispatch_retry.max_attempts = 3;
  options.dispatch_retry.backoff_initial_s = 0.01;
  options.run_seed = 7;
  return options;
}

struct FleetRun {
  std::string trace;
  FleetScheduler::Stats stats;
};

FleetRun fleet_run(std::size_t workers, std::vector<std::string> chaos_flags,
                   FleetOptions (*tweak)(FleetOptions) = nullptr) {
  const ArgvBuilder argv(stack_flags());
  const auto stack = cli::build_evaluation_stack(argv.args());
  FleetOptions options = fleet_options(workers, std::move(chaos_flags));
  if (tweak != nullptr) options = tweak(std::move(options));
  FleetScheduler scheduler(std::move(options));
  core::FrameworkOptions framework_options = run_options();
  framework_options.optimizer.dispatcher = &scheduler;
  FleetRun run;
  run.trace = trace_csv(stack->framework->optimize(framework_options));
  scheduler.shutdown();
  run.stats = scheduler.stats();
  return run;
}

void expect_no_zombie_children() {
  errno = 0;
  EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST(FleetScheduler, MatchesInProcessTraceBitExactly) {
  const std::string reference = reference_trace();
  const FleetRun fleet = fleet_run(3, {});
  EXPECT_EQ(fleet.trace, reference);
  // The engine dispatches whole rounds (3 x batch 4 here) and truncates
  // the trace to the evaluation budget, so completions exceed 10.
  EXPECT_GE(fleet.stats.completed, 10u);
  EXPECT_EQ(fleet.stats.worker_deaths, 0u);
  EXPECT_EQ(fleet.stats.failed_jobs, 0u);
  expect_no_zombie_children();
}

TEST(FleetScheduler, SurvivesWorkerKillsAndReproducesTrace) {
  const std::string reference = reference_trace();
  // Chaos: each dispatch draws from the seeded schedule; at these rates
  // the (deterministic) schedule kills several workers mid-round while no
  // job exhausts its dispatch attempts — the requeued retries all land.
  const FleetRun fleet =
      fleet_run(4, {"--worker-kill-rate", "0.2", "--reply-corrupt-rate",
                    "0.15"});
  EXPECT_EQ(fleet.trace, reference);
  // A SIGKILL'd worker's in-flight jobs go Lost and are requeued per the
  // dispatch RetryPolicy; the study still completes with every record.
  EXPECT_GE(fleet.stats.worker_deaths, 1u);
  EXPECT_GE(fleet.stats.lost, 1u);
  EXPECT_GE(fleet.stats.requeued, 1u);
  EXPECT_EQ(fleet.stats.respawns, fleet.stats.worker_deaths);
  EXPECT_GE(fleet.stats.completed, 10u);
  EXPECT_EQ(fleet.stats.failed_jobs, 0u);
  expect_no_zombie_children();
}

TEST(FleetScheduler, SurvivesHangingWorkersViaMissedBeats) {
  const std::string reference = reference_trace();
  const FleetRun fleet = fleet_run(3, {"--worker-hang-rate", "0.25"},
                                   [](FleetOptions options) {
                                     options.missed_beat_limit = 4;
                                     return options;
                                   });
  EXPECT_EQ(fleet.trace, reference);
  EXPECT_GE(fleet.stats.worker_deaths, 1u);  // hung workers are killed
  EXPECT_GE(fleet.stats.requeued, 1u);
  EXPECT_GE(fleet.stats.completed, 10u);
  expect_no_zombie_children();
}

TEST(FleetScheduler, MissingWorkerBinaryThrows) {
  FleetOptions options;
  options.supervisor.worker_binary = "/no/such/hpo-worker";
  options.supervisor.workers = 1;
  FleetScheduler scheduler(std::move(options));
  std::vector<core::RoundJob> jobs;
  jobs.push_back(core::RoundJob{0, core::Configuration{0.5, 0.5}});
  EXPECT_THROW((void)scheduler.evaluate_round(std::move(jobs)),
               std::runtime_error);
}

TEST(WorkerSupervisor, SpawnsQuitsAndReapsEverything) {
  WorkerSupervisor::Options options;
  options.worker_binary = HYPERPOWER_WORKER_BIN;
  options.worker_args = stack_flags();
  options.workers = 2;
  WorkerSupervisor supervisor(options);
  supervisor.start();
  EXPECT_EQ(supervisor.live_count(), 2u);
  supervisor.shutdown();
  EXPECT_EQ(supervisor.live_count(), 0u);
  EXPECT_TRUE(supervisor.all_reaped());
  expect_no_zombie_children();
}

TEST(WorkerSupervisor, KilledWorkerRespawnsWithinBudget) {
  WorkerSupervisor::Options options;
  options.worker_binary = HYPERPOWER_WORKER_BIN;
  options.worker_args = stack_flags();
  options.workers = 2;
  options.respawn_budget = 1;
  WorkerSupervisor supervisor(options);
  supervisor.start();
  supervisor.kill_worker(0);
  EXPECT_FALSE(supervisor.alive(0));
  EXPECT_EQ(supervisor.live_count(), 1u);

  EXPECT_TRUE(supervisor.respawn(0));
  EXPECT_TRUE(supervisor.alive(0));
  EXPECT_EQ(supervisor.respawns(), 1u);

  // Budget exhausted: the next loss retires the slot instead.
  supervisor.kill_worker(0);
  EXPECT_FALSE(supervisor.respawn(0));
  EXPECT_TRUE(supervisor.retired(0));
  EXPECT_EQ(supervisor.live_count(), 1u);

  supervisor.shutdown();
  EXPECT_TRUE(supervisor.all_reaped());
  expect_no_zombie_children();
}

}  // namespace
}  // namespace hp::dist
