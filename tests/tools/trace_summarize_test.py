#!/usr/bin/env python3
"""Unit tests for tools/trace_summarize.py (stdlib unittest, ctest-registered).

Covers the trace-tooling contract: the critical-path segments partition the
root span exactly (coverage 100% on synthetic trees with gaps, nesting, and
parallel overlap), --check-coverage fails with exit 1 when violated, forest
building resolves shared span ids by containment, phase self-times subtract
direct children, instants render in the timeline, and unreadable or
malformed trace files exit 2.
"""

import contextlib
import io
import json
import sys
import tempfile
import unittest
from pathlib import Path

TOOLS_DIR = Path(__file__).resolve().parent.parent.parent / "tools"
sys.path.insert(0, str(TOOLS_DIR))

import trace_summarize  # noqa: E402


def span(name, sid, parent, ts, dur, extra=None):
    args = {"id": sid, "parent": parent}
    args.update(extra or {})
    return {"name": name, "ph": "X", "ts": ts, "dur": dur, "pid": 1,
            "tid": 1, "args": args}


def instant(name, ts, extra=None):
    args = dict(extra or {})
    return {"name": name, "ph": "i", "ts": ts, "s": "t", "pid": 1, "tid": 1,
            "args": args}


def write_trace(path, events):
    path.write_text(json.dumps({"displayTimeUnit": "ms",
                                "traceEvents": events}))


def run_main(argv):
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = trace_summarize.main(argv)
    return code, out.getvalue(), err.getvalue()


# A realistic little run: root with two rounds, the second round holding
# two parallel (overlapping) evaluations, plus retry/fault instants.
SAMPLE_EVENTS = [
    span("optimizer.run", "0x01", "0x00", 0, 1000),
    span("optimizer.round", "0x02", "0x01", 100, 300),
    span("optimizer.round", "0x03", "0x01", 500, 400),
    span("optimizer.sample.evaluate", "0x04", "0x03", 510, 200,
         {"sample": 4}),
    span("optimizer.sample.evaluate", "0x05", "0x03", 560, 300,
         {"sample": 5}),
    instant("eval.retry", 620, {"sample": 5, "attempt": 1,
                                "kind": "transient"}),
    instant("fault.injected", 615, {"kind": "transient", "attempt": 1}),
]


class CriticalPathTest(unittest.TestCase):
    def check_partition(self, events):
        spans, _ = trace_summarize.parse_events(events)
        roots = trace_summarize.build_forest(spans)
        root = trace_summarize.pick_root(roots)
        segments = trace_summarize.critical_path(root)
        self.assertAlmostEqual(sum(d for _, d in segments), root.dur,
                               places=6)
        return root, segments

    def test_segments_partition_root_with_gaps_and_overlap(self):
        root, segments = self.check_partition(SAMPLE_EVENTS)
        self.assertEqual(root.name, "optimizer.run")
        merged = {}
        for name, dur in segments:
            merged[name] = merged.get(name, 0.0) + dur
        # Root self: [0,100) + [400,500) + [900,1000) = 300.
        self.assertAlmostEqual(merged["optimizer.run"], 300.0)
        # Round 1 has no children; round 2 self is its pre/post-eval time.
        self.assertAlmostEqual(merged["optimizer.round"], 300.0 + 10.0 + 40.0)
        # The two evaluations overlap in [560,710); the second contributes
        # only its uncovered tail, so evaluate time is 200 + 150.
        self.assertAlmostEqual(merged["optimizer.sample.evaluate"], 350.0)

    def test_child_exceeding_parent_never_overcounts(self):
        events = [
            span("run", "0x01", "0x00", 0, 100),
            span("late", "0x02", "0x01", 90, 50),  # clock-skewed overhang
        ]
        spans, _ = trace_summarize.parse_events(events)
        roots = trace_summarize.build_forest(spans)
        # The overhanging child is clamped to its parent's window, so the
        # partition stays exact (and the clamped tail is the child's).
        root = trace_summarize.pick_root(roots)
        self.assertEqual(root.name, "run")
        segments = trace_summarize.critical_path(root)
        self.assertAlmostEqual(sum(d for _, d in segments), 100.0)
        self.assertIn(("late", 10.0), segments)


class ForestTest(unittest.TestCase):
    def test_shared_ids_resolve_to_tightest_containing_occurrence(self):
        # Two same-id siblings (repeated gp.cholesky pattern); each child
        # must land in the occurrence whose window contains it.
        events = [
            span("run", "0x01", "0x00", 0, 1000),
            span("fit", "0x09", "0x01", 0, 400),
            span("fit", "0x09", "0x01", 500, 400),
            span("chol", "0x0a", "0x09", 100, 100),
            span("chol", "0x0a", "0x09", 600, 100),
        ]
        spans, _ = trace_summarize.parse_events(events)
        trace_summarize.build_forest(spans)
        fits = [s for s in spans if s.name == "fit"]
        for fit in fits:
            self.assertEqual(len(fit.children), 1)
            child = fit.children[0]
            self.assertGreaterEqual(child.start, fit.start)
            self.assertLessEqual(child.end, fit.end)

    def test_phase_stats_subtract_direct_children(self):
        spans, _ = trace_summarize.parse_events(SAMPLE_EVENTS)
        trace_summarize.build_forest(spans)
        stats = dict(trace_summarize.phase_stats(spans))
        count, total, self_time = stats["optimizer.round"]
        self.assertEqual(count, 2)
        self.assertAlmostEqual(total, 700.0)
        # Self time clamps at 0 per span: round 1 keeps its full 300, and
        # round 2 (400 wall, 500 of overlapping children) contributes 0.
        self.assertAlmostEqual(self_time, 300.0)
        count, total, self_time = stats["optimizer.run"]
        self.assertAlmostEqual(self_time, 1000.0 - 700.0)


class CliTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.trace = Path(self._tmp.name) / "run.trace.json"
        write_trace(self.trace, SAMPLE_EVENTS)

    def tearDown(self):
        self._tmp.cleanup()

    def test_default_summary_exits_ok(self):
        code, out, _ = run_main([str(self.trace)])
        self.assertEqual(code, trace_summarize.EXIT_OK)
        self.assertIn("critical path of optimizer.run", out)
        self.assertIn("[coverage]", out)
        self.assertIn("100.0%", out)
        self.assertIn("optimizer.sample.evaluate", out)

    def test_check_coverage_pass_and_fail(self):
        code, _, _ = run_main([str(self.trace), "--critical-path",
                               "--check-coverage", "95"])
        self.assertEqual(code, trace_summarize.EXIT_OK)
        # An impossible bar (>100%) must fail with exit 1.
        code, _, err = run_main([str(self.trace), "--critical-path",
                                 "--check-coverage", "100.5"])
        self.assertEqual(code, trace_summarize.EXIT_FAIL)
        self.assertIn("FAIL", err)

    def test_timeline_lists_instants_in_time_order(self):
        code, out, _ = run_main([str(self.trace), "--timeline"])
        self.assertEqual(code, trace_summarize.EXIT_OK)
        self.assertIn("fault.injected", out)
        self.assertIn("eval.retry", out)
        self.assertLess(out.index("fault.injected"), out.index("eval.retry"))
        self.assertIn("kind=transient", out)

    def test_slowest_ranks_evaluation_spans(self):
        code, out, _ = run_main([str(self.trace), "--slowest", "1"])
        self.assertEqual(code, trace_summarize.EXIT_OK)
        self.assertIn("sample=5", out)
        self.assertNotIn("sample=4", out)

    def test_missing_file_exits_error(self):
        code, _, err = run_main([str(self.trace) + ".nope"])
        self.assertEqual(code, trace_summarize.EXIT_ERROR)
        self.assertIn("error:", err)

    def test_malformed_json_exits_error(self):
        self.trace.write_text("{not json")
        code, _, err = run_main([str(self.trace)])
        self.assertEqual(code, trace_summarize.EXIT_ERROR)
        self.assertIn("not valid JSON", err)

    def test_missing_trace_events_exits_error(self):
        self.trace.write_text(json.dumps({"other": []}))
        code, _, err = run_main([str(self.trace)])
        self.assertEqual(code, trace_summarize.EXIT_ERROR)
        self.assertIn("missing traceEvents", err)

    def test_empty_trace_exits_error(self):
        write_trace(self.trace, [])
        code, _, err = run_main([str(self.trace), "--critical-path"])
        self.assertEqual(code, trace_summarize.EXIT_ERROR)
        self.assertIn("no spans", err)


if __name__ == "__main__":
    unittest.main()
