#!/usr/bin/env python3
"""Unit tests for tools/lint.py (stdlib unittest, ctest-registered).

Every lint rule gets at least one firing fixture and one passing fixture
(including the sanctioned exemptions: src/stats for randomness, src/obs
for stdio, core/thread_annotations.hpp for raw synchronization), built in
throwaway source trees so the tests pin the rules themselves rather than
the current state of the repo. The CLI contract (exit 0 clean / 1
findings / 2 usage error, relative paths in findings) and the invariant
that the real tree is lint-clean are covered at the end.
"""

import contextlib
import io
import sys
import tempfile
import unittest
from pathlib import Path

TOOLS_DIR = Path(__file__).resolve().parent.parent.parent / "tools"
sys.path.insert(0, str(TOOLS_DIR))

import lint  # noqa: E402


def run_checks(files):
    """Runs all lint checks over a synthetic tree; returns the findings.

    `files` maps repo-relative paths to file contents. The tree always
    gets a src/ directory so it passes lint's repo-root sanity check.
    """
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp).resolve()
        (root / "src").mkdir()
        for rel, content in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)
        findings = []
        for path in lint.iter_source_files(root):
            lines = path.read_text().splitlines()
            for check in lint.CHECKS:
                check(path, root, lines, findings)
        return findings


def rules(findings):
    return {f.rule for f in findings}


def run_main(argv):
    out, err = io.StringIO(), io.StringIO()
    old_argv = sys.argv
    sys.argv = ["lint.py"] + argv
    try:
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = lint.main()
    finally:
        sys.argv = old_argv
    return code, out.getvalue(), err.getvalue()


class RandomnessTest(unittest.TestCase):
    def test_fires_on_rand_and_random_device_in_src(self):
        findings = run_checks({
            "src/core/a.cpp": "int f() { return rand(); }\n",
            "src/core/b.cpp": "std::random_device rd;\n",
        })
        self.assertEqual(rules(findings), {"determinism-random"})
        self.assertEqual(len(findings), 2)

    def test_src_stats_and_comments_are_exempt(self):
        findings = run_checks({
            "src/stats/rng.cpp": "int f() { return rand(); }\n",
            "src/core/c.cpp": "// rand() is forbidden outside stats\n",
        })
        self.assertEqual(rules(findings), set())


class LibraryIoTest(unittest.TestCase):
    def test_fires_on_stdio_in_library_code(self):
        findings = run_checks({
            "src/core/a.cpp": 'void f() { std::cout << 1; printf("x"); }\n',
        })
        self.assertEqual(rules(findings), {"library-io"})

    def test_obs_sinks_and_tools_are_exempt(self):
        findings = run_checks({
            "src/obs/sink.cpp": "void f() { std::cerr << 1; }\n",
            "tools/cli.cpp": "void f() { std::cout << 1; }\n",
        })
        self.assertEqual(rules(findings), set())


class ExceptionSwallowTest(unittest.TestCase):
    def test_fires_on_silent_catch_all(self):
        # Fixture lives outside src/core so only the swallow rule fires
        # (in src/core the same handler also violates failure-recording).
        findings = run_checks({
            "src/nn/a.cpp": "void f() { try { g(); } catch (...) { } }\n",
        })
        self.assertEqual(rules(findings), {"exception-swallow"})

    def test_rethrow_and_capture_pass(self):
        findings = run_checks({
            "src/core/a.cpp":
                "void f() { try { g(); } catch (...) { throw; } }\n"
                "void h() { try { g(); } catch (...) "
                "{ e = std::current_exception(); } }\n",
        })
        self.assertEqual(rules(findings), set())


class FailureRecordingTest(unittest.TestCase):
    def test_fires_on_unrecorded_typed_catch_in_core(self):
        findings = run_checks({
            "src/core/a.cpp":
                "void f() { try { g(); } "
                "catch (const std::exception&) { count = 0; } }\n",
        })
        self.assertEqual(rules(findings), {"failure-recording"})

    def test_recording_and_other_dirs_pass(self):
        findings = run_checks({
            "src/core/a.cpp":
                "void f() { try { g(); } "
                "catch (const std::exception&) { record_failure(); } }\n",
            "src/nn/b.cpp":
                "void f() { try { g(); } "
                "catch (const std::exception&) { count = 0; } }\n",
        })
        self.assertEqual(rules(findings), set())


class RawObjectiveEvaluateTest(unittest.TestCase):
    def test_fires_on_direct_evaluate_call(self):
        findings = run_checks({
            "src/core/a.cpp": "auto r = objective->evaluate(x);\n",
        })
        self.assertEqual(rules(findings), {"raw-objective-evaluate"})

    def test_pipeline_and_cost_model_callers_pass(self):
        findings = run_checks({
            "src/core/evaluation_engine.cpp":
                "auto r = objective->evaluate(x);\n",
            "src/core/b.cpp": "auto c = device.cost_model().evaluate(net);\n",
        })
        self.assertEqual(rules(findings), set())


class StudyAskTellTest(unittest.TestCase):
    def test_fires_on_proposer_and_recorder_mutation_outside_study(self):
        findings = run_checks({
            "src/core/evaluation_engine.cpp":
                "void f() { auto c = proposer_.propose(rng);\n"
                "  auto batch = proposer.propose_batch(base, count);\n"
                "  recorder_.observe_sample(record, mode);\n"
                "  recorder_.commit(std::move(record), mode);\n"
                "  recorder_.begin_run(); }\n",
            "src/dist/job_scheduler.cpp":
                "void g() { proposer->observe(record);\n"
                "  auto t = recorder.take_trace(); }\n",
        })
        self.assertEqual(rules(findings), {"study-ask-tell"})
        self.assertEqual(len(findings), 7)

    def test_study_internals_self_calls_and_tests_are_exempt(self):
        findings = run_checks({
            # The sanctioned owner of ask/tell state transitions.
            "src/core/study.cpp":
                "void f() { auto c = proposer_.propose(rng);\n"
                "  recorder_.observe_sample(record, mode);\n"
                "  proposer_.observe(record);\n"
                "  recorder_.commit(std::move(record), mode); }\n",
            # A proposer's own batch helper calls propose() bare — no
            # member receiver, so subclass internals stay legal.
            "src/core/bayes_opt.cpp":
                "auto fill = [this](Rng& rng) { return propose(rng); };\n",
            # Histogram::observe shares the name; non-proposer receivers
            # don't match.
            "src/parallel/pool.cpp": "wait_hist_->observe(elapsed);\n",
            # Tests drive studies and proposers directly.
            "tests/core/study_test.py_like.cpp":
                "auto c = proposer.propose(rng);\n",
        })
        self.assertEqual(rules(findings), set())


class TraceNameLiteralTest(unittest.TestCase):
    def test_fires_on_runtime_formatted_name(self):
        findings = run_checks({
            "src/core/a.cpp": "ScopedTimer t(make_name(round));\n",
        })
        self.assertEqual(rules(findings), {"trace-name-literal"})

    def test_dotted_literal_passes(self):
        findings = run_checks({
            "src/core/a.cpp":
                'ScopedTimer t("optimizer.round.propose", tracer);\n',
        })
        self.assertEqual(rules(findings), set())


class RawProcessControlTest(unittest.TestCase):
    def test_fires_on_fork_pipe_waitpid_outside_dist(self):
        findings = run_checks({
            "src/core/a.cpp":
                "void f() {\n"
                "  int fds[2];\n"
                "  ::pipe(fds);\n"
                "  const pid_t pid = fork();\n"
                "  waitpid(pid, nullptr, 0);\n"
                "}\n",
        })
        self.assertEqual(rules(findings), {"raw-process-control"})
        self.assertEqual(len(findings), 3)

    def test_fires_on_exec_and_spawn_variants(self):
        findings = run_checks({
            "src/hw/a.cpp":
                "void f(char** argv) {\n"
                "  ::execv(argv[0], argv);\n"
                "  posix_spawn(nullptr, argv[0], nullptr, nullptr,\n"
                "              argv, nullptr);\n"
                "}\n",
        })
        self.assertEqual(rules(findings), {"raw-process-control"})
        self.assertEqual(len(findings), 2)

    def test_dist_tests_members_and_comments_are_exempt(self):
        findings = run_checks({
            # The sanctioned owner of process lifecycle.
            "src/dist/supervisor.cpp":
                "void f() { int fds[2]; ::pipe(fds);\n"
                "  const pid_t pid = ::fork();\n"
                "  ::waitpid(pid, nullptr, 0); }\n",
            # Tests may reap directly to assert no zombies remain.
            "tests/dist/a_test.cpp": "waitpid(-1, nullptr, WNOHANG);\n",
            # Member calls and identifiers containing the names don't match.
            "src/core/b.cpp":
                "void g() { table.fork(); pipeline(x); my_waitpid_count++; }\n"
                "// fork() belongs in src/dist\n",
        })
        self.assertEqual(rules(findings), set())


class RawMutexTest(unittest.TestCase):
    def test_fires_on_each_raw_primitive_and_header(self):
        findings = run_checks({
            "src/core/locks.cpp":
                "#include <mutex>\n"
                "#include <condition_variable>\n"
                "void f() {\n"
                "  std::mutex m;\n"
                "  std::lock_guard<std::mutex> lock(m);\n"
                "  std::unique_lock<std::mutex> ul(m);\n"
                "  std::condition_variable cv;\n"
                "}\n",
        })
        self.assertEqual(rules(findings), {"raw-mutex"})
        # Two forbidden includes plus four declaration lines.
        self.assertEqual(len(findings), 6)

    def test_fires_on_shared_and_recursive_variants(self):
        findings = run_checks({
            "src/hw/a.hpp":
                "#pragma once\n"
                "#include <shared_mutex>\n"
                "struct S {\n"
                "  std::shared_mutex sm;\n"
                "  std::recursive_mutex rm;\n"
                "  std::condition_variable_any cva;\n"
                "};\n",
        })
        self.assertEqual(rules(findings), {"raw-mutex"})
        self.assertEqual(len(findings), 4)

    def test_annotation_header_tests_and_comments_are_exempt(self):
        findings = run_checks({
            # The one sanctioned owner of the raw primitives.
            "src/core/thread_annotations.hpp":
                "#pragma once\n"
                "#include <mutex>\n"
                "#include <condition_variable>\n"
                "class Mutex { std::mutex mutex_; };\n",
            # Tests may use std primitives to probe the wrappers.
            "tests/core/a_test.cpp": "std::mutex test_mutex;\n",
            "src/core/doc.cpp": "// prefer hp::Mutex over std::mutex\n",
        })
        self.assertEqual(rules(findings), set())


class PragmaOnceTest(unittest.TestCase):
    def test_fires_when_header_lacks_pragma_once(self):
        findings = run_checks({"src/core/a.hpp": "int x;\n"})
        self.assertEqual(rules(findings), {"pragma-once"})

    def test_pragma_after_leading_comment_passes(self):
        findings = run_checks({
            "src/core/a.hpp": "// doc comment\n#pragma once\nint x;\n",
        })
        self.assertEqual(rules(findings), set())


class IncludeChecksTest(unittest.TestCase):
    def test_include_exists_fires_on_stale_path(self):
        findings = run_checks({
            "src/core/a.cpp": '#include "core/gone.hpp"\n',
        })
        self.assertEqual(rules(findings), {"include-exists"})

    def test_include_exists_resolves_against_src(self):
        findings = run_checks({
            "src/core/real.hpp": "#pragma once\n",
            "src/nn/a.cpp": '#include "core/real.hpp"\n',
        })
        self.assertEqual(rules(findings), set())

    def test_no_bits_include_fires(self):
        findings = run_checks({
            "src/core/a.cpp": "#include <bits/stdc++.h>\n",
        })
        self.assertEqual(rules(findings), {"no-bits-include"})

    def test_header_no_iostream_fires_in_headers_only(self):
        findings = run_checks({
            "src/core/a.hpp": "#pragma once\n#include <iostream>\n",
            "src/core/b.cpp": "#include <iostream>\n",
        })
        self.assertEqual(rules(findings), {"header-no-iostream"})
        self.assertEqual(len(findings), 1)

    def test_self_include_first_fires_when_own_header_not_first(self):
        findings = run_checks({
            "src/core/foo.hpp": "#pragma once\n",
            "src/core/other.hpp": "#pragma once\n",
            "src/core/foo.cpp":
                '#include "core/other.hpp"\n#include "core/foo.hpp"\n',
        })
        self.assertEqual(rules(findings), {"self-include-first"})

    def test_self_include_first_passes_when_first(self):
        findings = run_checks({
            "src/core/foo.hpp": "#pragma once\n",
            "src/core/other.hpp": "#pragma once\n",
            "src/core/foo.cpp":
                '#include "core/foo.hpp"\n#include "core/other.hpp"\n',
        })
        self.assertEqual(rules(findings), set())


class CliTest(unittest.TestCase):
    def test_findings_exit_1_with_relative_paths(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "src" / "core").mkdir(parents=True)
            (root / "src" / "core" / "a.cpp").write_text(
                "int f() { return rand(); }\n")
            code, out, err = run_main(["--root", str(root)])
        self.assertEqual(code, 1)
        self.assertIn("[determinism-random]", out)
        self.assertIn("src/core/a.cpp", out)
        self.assertNotIn(tmp, out)  # findings print repo-relative paths
        self.assertIn("1 finding(s)", err)

    def test_clean_tree_exits_0(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "src").mkdir()
            code, _, err = run_main(["--root", str(root)])
        self.assertEqual(code, 0)
        self.assertIn("clean", err)

    def test_non_repo_root_exits_2(self):
        with tempfile.TemporaryDirectory() as tmp:
            code, _, err = run_main(["--root", tmp])
        self.assertEqual(code, 2)
        self.assertIn("error:", err)

    def test_real_tree_is_clean(self):
        code, _, _ = run_main(["--root", str(TOOLS_DIR.parent)])
        self.assertEqual(code, 0)


if __name__ == "__main__":
    unittest.main()
