#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py (stdlib unittest, ctest-registered).

Covers the perf-gate contract: regressions beyond threshold fail with exit 1,
improvements are reported but pass, a missing baseline only warns (exit 0),
malformed JSON is rejected with exit 2, and tracked.json ratio invariants are
enforced on the current snapshots.
"""

import contextlib
import io
import json
import sys
import tempfile
import unittest
from pathlib import Path

TOOLS_DIR = Path(__file__).resolve().parent.parent.parent / "tools"
sys.path.insert(0, str(TOOLS_DIR))

import bench_compare  # noqa: E402


def write_bench(directory: Path, name: str, times: dict) -> None:
    runs = [{"name": run, "iterations": 10, "real_time": t, "cpu_time": t,
             "time_unit": "ns"} for run, t in times.items()]
    (directory / name).write_text(json.dumps({"bench": "x", "runs": runs}))


def run_compare(argv):
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = bench_compare.main(argv)
    return code, out.getvalue(), err.getvalue()


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = Path(self._tmp.name)
        self.baseline = root / "baseline"
        self.current = root / "current"
        self.baseline.mkdir()
        self.current.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def args(self, *extra):
        return ["--baseline-dir", str(self.baseline),
                "--current-dir", str(self.current), *extra]

    def test_unchanged_times_pass(self):
        write_bench(self.baseline, "BENCH_a.json", {"BM_X/10": 100.0})
        write_bench(self.current, "BENCH_a.json", {"BM_X/10": 104.0})
        code, out, _ = run_compare(self.args())
        self.assertEqual(code, 0)
        self.assertIn("OK", out)

    def test_regression_detected(self):
        write_bench(self.baseline, "BENCH_a.json", {"BM_X/10": 100.0})
        write_bench(self.current, "BENCH_a.json", {"BM_X/10": 130.0})
        code, out, err = run_compare(self.args())
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)
        self.assertIn("BM_X/10", err)

    def test_regression_respects_threshold_flag(self):
        write_bench(self.baseline, "BENCH_a.json", {"BM_X/10": 100.0})
        write_bench(self.current, "BENCH_a.json", {"BM_X/10": 130.0})
        code, _, _ = run_compare(self.args("--threshold", "0.5"))
        self.assertEqual(code, 0)

    def test_improvement_reported_and_passes(self):
        write_bench(self.baseline, "BENCH_a.json", {"BM_X/10": 100.0})
        write_bench(self.current, "BENCH_a.json", {"BM_X/10": 40.0})
        code, out, _ = run_compare(self.args())
        self.assertEqual(code, 0)
        self.assertIn("IMPROVED", out)
        self.assertIn("2.50x faster", out)

    def test_missing_baseline_file_warns_but_passes(self):
        write_bench(self.current, "BENCH_new.json", {"BM_X/10": 100.0})
        code, out, _ = run_compare(self.args())
        self.assertEqual(code, 0)
        self.assertIn("WARNING", out)
        self.assertIn("no baseline for BENCH_new.json", out)

    def test_new_run_in_current_is_not_compared(self):
        write_bench(self.baseline, "BENCH_a.json", {"BM_X/10": 100.0})
        write_bench(self.current, "BENCH_a.json",
                    {"BM_X/10": 100.0, "BM_Y/10": 5.0})
        code, out, _ = run_compare(self.args())
        self.assertEqual(code, 0)
        self.assertIn("NEW", out)

    def test_malformed_json_rejected(self):
        write_bench(self.baseline, "BENCH_a.json", {"BM_X/10": 100.0})
        (self.current / "BENCH_a.json").write_text("{not json")
        code, _, err = run_compare(self.args())
        self.assertEqual(code, 2)
        self.assertIn("malformed", err)

    def test_missing_runs_array_rejected(self):
        write_bench(self.baseline, "BENCH_a.json", {"BM_X/10": 100.0})
        (self.current / "BENCH_a.json").write_text(json.dumps({"bench": "a"}))
        code, _, err = run_compare(self.args())
        self.assertEqual(code, 2)
        self.assertIn("runs", err)

    def test_empty_current_dir_is_usage_error(self):
        code, _, err = run_compare(self.args())
        self.assertEqual(code, 2)
        self.assertIn("no BENCH_*.json", err)

    def test_normalize_mode_ignores_uniform_machine_speed(self):
        # Current machine is 3x slower across the board: absolute comparison
        # would scream regression, normalized comparison passes.
        write_bench(self.baseline, "BENCH_a.json",
                    {"BM_Ref/1": 10.0, "BM_X/10": 100.0})
        write_bench(self.current, "BENCH_a.json",
                    {"BM_Ref/1": 30.0, "BM_X/10": 300.0})
        code, _, _ = run_compare(self.args())
        self.assertEqual(code, 1)
        code, _, _ = run_compare(self.args("--normalize", "BM_Ref/1"))
        self.assertEqual(code, 0)

    def test_normalize_detects_relative_regression(self):
        write_bench(self.baseline, "BENCH_a.json",
                    {"BM_Ref/1": 10.0, "BM_X/10": 100.0})
        write_bench(self.current, "BENCH_a.json",
                    {"BM_Ref/1": 10.0, "BM_X/10": 200.0})
        code, out, _ = run_compare(self.args("--normalize", "BM_Ref/1"))
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)

    def test_normalize_missing_reference_is_error(self):
        write_bench(self.baseline, "BENCH_a.json", {"BM_X/10": 100.0})
        write_bench(self.current, "BENCH_a.json", {"BM_X/10": 100.0})
        code, _, err = run_compare(self.args("--normalize", "BM_Nope/1"))
        self.assertEqual(code, 2)
        self.assertIn("BM_Nope/1", err)

    def _write_invariant(self, min_ratio):
        (self.baseline / "tracked.json").write_text(json.dumps({
            "invariants": [{
                "file": "BENCH_a.json",
                "numerator": "BM_Full/200",
                "denominator": "BM_Inc/200",
                "min_ratio": min_ratio,
            }]}))

    def test_invariant_satisfied(self):
        write_bench(self.baseline, "BENCH_a.json",
                    {"BM_Full/200": 1000.0, "BM_Inc/200": 100.0})
        write_bench(self.current, "BENCH_a.json",
                    {"BM_Full/200": 900.0, "BM_Inc/200": 100.0})
        self._write_invariant(5.0)
        code, out, _ = run_compare(self.args())
        self.assertEqual(code, 0)
        self.assertIn("invariant", out)

    def test_invariant_violation_fails(self):
        write_bench(self.baseline, "BENCH_a.json",
                    {"BM_Full/200": 1000.0, "BM_Inc/200": 100.0})
        # Incremental path broke: only 2x faster than full now.
        write_bench(self.current, "BENCH_a.json",
                    {"BM_Full/200": 1000.0, "BM_Inc/200": 500.0})
        self._write_invariant(5.0)
        code, out, err = run_compare(self.args())
        self.assertEqual(code, 1)
        self.assertIn("VIOLATION", out)
        self.assertIn("BM_Full/200", err)

    def test_invariant_missing_run_is_error(self):
        write_bench(self.baseline, "BENCH_a.json", {"BM_Full/200": 1000.0})
        write_bench(self.current, "BENCH_a.json", {"BM_Full/200": 1000.0})
        self._write_invariant(5.0)
        code, _, err = run_compare(self.args())
        self.assertEqual(code, 2)
        self.assertIn("BM_Inc/200", err)

    def _write_max_invariant(self, max_ratio):
        # An overhead ceiling: the fleet round may cost at most max_ratio x
        # the in-process round.
        (self.baseline / "tracked.json").write_text(json.dumps({
            "invariants": [{
                "file": "BENCH_a.json",
                "numerator": "BM_Fleet/1",
                "denominator": "BM_InProc",
                "max_ratio": max_ratio,
            }]}))

    def test_max_ratio_invariant_satisfied(self):
        write_bench(self.baseline, "BENCH_a.json",
                    {"BM_Fleet/1": 150.0, "BM_InProc": 100.0})
        write_bench(self.current, "BENCH_a.json",
                    {"BM_Fleet/1": 150.0, "BM_InProc": 100.0})
        self._write_max_invariant(3.0)
        code, out, _ = run_compare(self.args())
        self.assertEqual(code, 0)
        self.assertIn("<= 3.0x", out)

    def test_max_ratio_invariant_violation_fails(self):
        write_bench(self.baseline, "BENCH_a.json",
                    {"BM_Fleet/1": 120.0, "BM_InProc": 100.0})
        # Dispatch path regressed: fleet rounds now cost 5x in-process.
        write_bench(self.current, "BENCH_a.json",
                    {"BM_Fleet/1": 500.0, "BM_InProc": 100.0})
        self._write_max_invariant(3.0)
        code, out, err = run_compare(self.args())
        self.assertEqual(code, 1)
        self.assertIn("VIOLATION", out)
        self.assertIn("BM_Fleet/1", err)

    def test_invariant_with_both_bounds_enforces_a_band(self):
        write_bench(self.baseline, "BENCH_a.json",
                    {"BM_Fleet/1": 120.0, "BM_InProc": 100.0})
        write_bench(self.current, "BENCH_a.json",
                    {"BM_Fleet/1": 50.0, "BM_InProc": 100.0})
        (self.baseline / "tracked.json").write_text(json.dumps({
            "invariants": [{
                "file": "BENCH_a.json",
                "numerator": "BM_Fleet/1",
                "denominator": "BM_InProc",
                "min_ratio": 0.9,
                "max_ratio": 3.0,
            }]}))
        code, out, _ = run_compare(self.args())
        self.assertEqual(code, 1)
        self.assertIn("VIOLATION", out)

    def test_invariant_without_any_bound_is_error(self):
        write_bench(self.baseline, "BENCH_a.json",
                    {"BM_Fleet/1": 120.0, "BM_InProc": 100.0})
        write_bench(self.current, "BENCH_a.json",
                    {"BM_Fleet/1": 120.0, "BM_InProc": 100.0})
        (self.baseline / "tracked.json").write_text(json.dumps({
            "invariants": [{
                "file": "BENCH_a.json",
                "numerator": "BM_Fleet/1",
                "denominator": "BM_InProc",
            }]}))
        code, _, err = run_compare(self.args())
        self.assertEqual(code, 2)
        self.assertIn("min_ratio and/or max_ratio", err)


if __name__ == "__main__":
    unittest.main()
