#include "hw/profiler.hpp"

#include <gtest/gtest.h>

namespace hp::hw {
namespace {

nn::CnnSpec make_spec(std::size_t features) {
  nn::CnnSpec spec;
  spec.input = {1, 1, 28, 28};
  spec.conv_stages = {{features, 3, 2}};
  spec.dense_stages = {{300}};
  spec.num_classes = 10;
  return spec;
}

TEST(InferenceProfiler, RejectsZeroReadings) {
  GpuSimulator sim(gtx1070(), 1);
  ProfilerOptions opt;
  opt.power_readings = 0;
  EXPECT_THROW(InferenceProfiler(sim, opt), std::invalid_argument);
}

TEST(InferenceProfiler, SampleCarriesStructuralVector) {
  GpuSimulator sim(gtx1070(), 2);
  InferenceProfiler profiler(sim);
  const ProfileSample sample = profiler.profile(make_spec(40));
  ASSERT_EQ(sample.z.size(), 4u);  // features, kernel, pool, units
  EXPECT_EQ(sample.z[0], 40.0);
  EXPECT_GT(sample.power_w, 0.0);
  EXPECT_GT(sample.latency_ms, 0.0);
}

TEST(InferenceProfiler, PowerCloseToGroundTruth) {
  GpuSimulator sim(gtx1070(), 3);
  InferenceProfiler profiler(sim);
  const ProfileSample sample = profiler.profile(make_spec(40));
  const double truth = sim.cost_model().evaluate(make_spec(40)).average_power_w;
  EXPECT_NEAR(sample.power_w, truth, truth * 0.02);
}

TEST(InferenceProfiler, MemoryPresentOnServer) {
  GpuSimulator sim(gtx1070(), 4);
  InferenceProfiler profiler(sim);
  const ProfileSample sample = profiler.profile(make_spec(40));
  ASSERT_TRUE(sample.memory_mb.has_value());
  EXPECT_GT(*sample.memory_mb, 100.0);
}

TEST(InferenceProfiler, MemoryAbsentOnTegra) {
  GpuSimulator sim(tegra_tx1(), 5);
  InferenceProfiler profiler(sim);
  const ProfileSample sample = profiler.profile(make_spec(40));
  EXPECT_FALSE(sample.memory_mb.has_value());
}

TEST(InferenceProfiler, SimulatorLeftIdleAfterProfiling) {
  GpuSimulator sim(gtx1070(), 6);
  InferenceProfiler profiler(sim);
  (void)profiler.profile(make_spec(40));
  EXPECT_FALSE(sim.model_loaded());
}

TEST(InferenceProfiler, ProfileAllSkipsInfeasible) {
  GpuSimulator sim(gtx1070(), 7);
  InferenceProfiler profiler(sim);
  nn::CnnSpec bad;
  bad.input = {1, 1, 6, 6};
  bad.conv_stages = {{4, 5, 3}, {4, 5, 1}};
  bad.num_classes = 10;
  const std::vector<nn::CnnSpec> specs{make_spec(30), bad, make_spec(60)};
  const auto samples = profiler.profile_all(specs);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].z[0], 30.0);
  EXPECT_EQ(samples[1].z[0], 60.0);
}

TEST(InferenceProfiler, MorePowerForBiggerNetworks) {
  GpuSimulator sim(gtx1070(), 8);
  InferenceProfiler profiler(sim);
  const auto small = profiler.profile(make_spec(20));
  const auto large = profiler.profile(make_spec(80));
  EXPECT_GT(large.power_w, small.power_w);
}

}  // namespace
}  // namespace hp::hw
