#include "hw/sensor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "hw/device.hpp"
#include "hw/gpu_simulator.hpp"

namespace hp::hw {
namespace {

nn::CnnSpec small_spec() {
  nn::CnnSpec spec;
  spec.input = {1, 1, 28, 28};
  spec.conv_stages = {{30, 3, 2}};
  spec.dense_stages = {{300}};
  spec.num_classes = 10;
  return spec;
}

/// A scripted sensor: reads follow a fixed ok/fail pattern.
class ScriptedSensor {
 public:
  explicit ScriptedSensor(std::vector<bool> fails) : fails_(std::move(fails)) {}
  double operator()() {
    const std::size_t i = calls_++;
    if (i < fails_.size() && fails_[i]) {
      throw SensorError("scripted failure");
    }
    return 100.0 + static_cast<double>(i);
  }
  [[nodiscard]] std::size_t calls() const noexcept { return calls_; }

 private:
  std::vector<bool> fails_;
  std::size_t calls_ = 0;
};

TEST(ReadPowerBurst, AveragesAllSuccessfulReads) {
  ScriptedSensor sensor({false, false, false, false});
  const PowerBurst burst =
      read_power_burst([&] { return sensor(); }, 4, /*fallback_after=*/3);
  EXPECT_FALSE(burst.degraded);
  EXPECT_EQ(burst.reads_ok, 4u);
  EXPECT_EQ(burst.failures, 0u);
  ASSERT_TRUE(burst.mean_w.has_value());
  // reads are 100, 101, 102, 103.
  EXPECT_DOUBLE_EQ(*burst.mean_w, 101.5);
}

TEST(ReadPowerBurst, SkipsIsolatedFailures) {
  ScriptedSensor sensor({false, true, false, true, false});
  const PowerBurst burst =
      read_power_burst([&] { return sensor(); }, 5, /*fallback_after=*/3);
  EXPECT_FALSE(burst.degraded);
  EXPECT_EQ(burst.reads_ok, 3u);
  EXPECT_EQ(burst.failures, 2u);
  ASSERT_TRUE(burst.mean_w.has_value());
  // successful reads are 100, 102, 104.
  EXPECT_DOUBLE_EQ(*burst.mean_w, 102.0);
}

TEST(ReadPowerBurst, DegradesAfterConsecutiveFailures) {
  ScriptedSensor sensor({false, true, true, true, false, false});
  const PowerBurst burst =
      read_power_burst([&] { return sensor(); }, 6, /*fallback_after=*/3);
  EXPECT_TRUE(burst.degraded);
  EXPECT_FALSE(burst.mean_w.has_value());
  EXPECT_EQ(burst.failures, 3u);
  // Gave up after the third consecutive failure: reads 5 and 6 never ran.
  EXPECT_EQ(sensor.calls(), 4u);
}

TEST(ReadPowerBurst, AllReadsFailedMeansNoMean) {
  ScriptedSensor sensor({true, true});
  const PowerBurst burst =
      read_power_burst([&] { return sensor(); }, 2, /*fallback_after=*/0);
  EXPECT_FALSE(burst.mean_w.has_value());
  EXPECT_EQ(burst.reads_ok, 0u);
  EXPECT_EQ(burst.failures, 2u);
}

TEST(ReadPowerBurst, ZeroFallbackAfterNeverDegrades) {
  ScriptedSensor sensor({true, true, true, true, false});
  const PowerBurst burst =
      read_power_burst([&] { return sensor(); }, 5, /*fallback_after=*/0);
  EXPECT_FALSE(burst.degraded);
  EXPECT_EQ(burst.reads_ok, 1u);
  EXPECT_EQ(burst.failures, 4u);
  ASSERT_TRUE(burst.mean_w.has_value());
  EXPECT_DOUBLE_EQ(*burst.mean_w, 104.0);
}

TEST(ReadPowerBurst, NonSensorExceptionsPropagate) {
  EXPECT_THROW((void)read_power_burst(
                   []() -> double { throw std::logic_error("bug"); }, 3, 3),
               std::logic_error);
}

TEST(GpuSimulatorFaults, DisabledFaultsLeaveReadingsIdentical) {
  GpuSimulator clean(gtx1070(), 11);
  GpuSimulator armed(gtx1070(), 11);
  SensorFaultSpec spec;
  spec.failure_rate = 0.0;
  armed.set_sensor_faults(spec);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(clean.read_power_w(), armed.read_power_w());
  }
}

TEST(GpuSimulatorFaults, FaultPatternIsDeterministicPerSeed) {
  SensorFaultSpec spec;
  spec.failure_rate = 0.3;
  spec.seed = 123;
  const auto pattern = [&spec](std::uint64_t noise_seed) {
    GpuSimulator sim(gtx1070(), noise_seed);
    sim.set_sensor_faults(spec);
    std::vector<bool> fails;
    for (int i = 0; i < 100; ++i) {
      try {
        (void)sim.read_power_w();
        fails.push_back(false);
      } catch (const SensorError&) {
        fails.push_back(true);
      }
    }
    return fails;
  };
  const std::vector<bool> a = pattern(11);
  EXPECT_EQ(a, pattern(11));
  // The fault stream is keyed by spec.seed, not the noise seed.
  EXPECT_EQ(a, pattern(12));
  EXPECT_GT(std::count(a.begin(), a.end(), true), 10);
  EXPECT_GT(std::count(a.begin(), a.end(), false), 40);
}

TEST(GpuSimulatorFaults, RateOneFailsEveryRead) {
  GpuSimulator sim(gtx1070(), 5);
  SensorFaultSpec spec;
  spec.failure_rate = 1.0;
  sim.set_sensor_faults(spec);
  for (int i = 0; i < 10; ++i) {
    EXPECT_THROW((void)sim.read_power_w(), SensorError);
  }
}

TEST(GpuSimulatorFaults, MemoryReadsHonorFailMemoryFlag) {
  GpuSimulator sim(gtx1070(), 6);
  SensorFaultSpec spec;
  spec.failure_rate = 1.0;
  spec.fail_memory = false;
  sim.set_sensor_faults(spec);
  EXPECT_EQ(sim.read_memory().status, GpuSimulator::MemoryQueryStatus::Ok);
  spec.fail_memory = true;
  sim.set_sensor_faults(spec);
  EXPECT_EQ(sim.read_memory().status,
            GpuSimulator::MemoryQueryStatus::ReadError);
}

TEST(GpuSimulatorFaults, MemoryReadReportsNotSupportedOnTegra) {
  GpuSimulator sim(tegra_tx1(), 7);
  EXPECT_EQ(sim.read_memory().status,
            GpuSimulator::MemoryQueryStatus::NotSupported);
  // NotSupported is permanent: injected faults do not turn it into a
  // transient ReadError.
  SensorFaultSpec spec;
  spec.failure_rate = 1.0;
  spec.fail_memory = true;
  sim.set_sensor_faults(spec);
  EXPECT_EQ(sim.read_memory().status,
            GpuSimulator::MemoryQueryStatus::NotSupported);
}

TEST(GpuSimulatorFaults, OkMemoryReadMatchesGroundTruth) {
  GpuSimulator sim(gtx1070(), 8);
  sim.load_model(small_spec());
  const auto truth = sim.memory_info();
  ASSERT_TRUE(truth.has_value());
  const GpuSimulator::MemoryReading reading = sim.read_memory();
  ASSERT_EQ(reading.status, GpuSimulator::MemoryQueryStatus::Ok);
  EXPECT_DOUBLE_EQ(reading.info.used_mb, truth->used_mb);
  EXPECT_DOUBLE_EQ(reading.info.total_mb, truth->total_mb);
}

}  // namespace
}  // namespace hp::hw
