#include "hw/cost_model.hpp"

#include <gtest/gtest.h>

namespace hp::hw {
namespace {

nn::CnnSpec mnist_like(std::size_t features = 40, std::size_t kernel = 3,
                       std::size_t pool = 2, std::size_t units = 400) {
  nn::CnnSpec spec;
  spec.input = {1, 1, 28, 28};
  spec.conv_stages = {{features, kernel, pool}};
  spec.dense_stages = {{units}};
  spec.num_classes = 10;
  return spec;
}

TEST(CostModel, ValidatesOptionsAndDevice) {
  CostModelOptions opt;
  opt.batch_size = 0;
  EXPECT_THROW(CostModel(gtx1070(), opt), std::invalid_argument);
  DeviceSpec bad = gtx1070();
  bad.fp32_tflops = 0.0;
  EXPECT_THROW(CostModel{bad}, std::invalid_argument);
}

TEST(CostModel, DeterministicEvaluation) {
  const CostModel cm(gtx1070());
  const auto a = cm.evaluate(mnist_like());
  const auto b = cm.evaluate(mnist_like());
  EXPECT_EQ(a.average_power_w, b.average_power_w);
  EXPECT_EQ(a.memory_mb, b.memory_mb);
  EXPECT_EQ(a.latency_ms, b.latency_ms);
}

TEST(CostModel, PowerWithinDeviceEnvelope) {
  for (const DeviceSpec& dev : all_devices()) {
    const CostModel cm(dev);
    const auto cost = cm.evaluate(mnist_like());
    EXPECT_GE(cost.average_power_w, dev.idle_power_w * 0.8) << dev.name;
    EXPECT_LE(cost.average_power_w, dev.tdp_w * 1.05) << dev.name;
  }
}

TEST(CostModel, MoreFeaturesMorePower) {
  const CostModel cm(gtx1070());
  const double p20 = cm.evaluate(mnist_like(20)).average_power_w;
  const double p80 = cm.evaluate(mnist_like(80)).average_power_w;
  EXPECT_GT(p80, p20);
}

TEST(CostModel, MoreUnitsMoreMemory) {
  const CostModel cm(gtx1070());
  const double m200 = cm.evaluate(mnist_like(40, 3, 2, 200)).memory_mb;
  const double m700 = cm.evaluate(mnist_like(40, 3, 2, 700)).memory_mb;
  EXPECT_GT(m700, m200);
}

TEST(CostModel, PoolingReducesMemory) {
  const CostModel cm(gtx1070());
  const double pooled = cm.evaluate(mnist_like(40, 3, 3)).memory_mb;
  const double unpooled = cm.evaluate(mnist_like(40, 3, 1)).memory_mb;
  EXPECT_GT(unpooled, pooled);
}

TEST(CostModel, PowerDemandAdditiveInStages) {
  const CostModel cm(gtx1070());
  nn::CnnSpec one = mnist_like();
  nn::CnnSpec two = mnist_like();
  two.input = {1, 1, 28, 28};
  two.conv_stages.push_back({30, 3, 2});
  EXPECT_GT(cm.power_demand(two), cm.power_demand(one));
}

TEST(CostModel, DepthAttenuationDeviceDependent) {
  // The same deep network draws relatively more on the embedded part.
  nn::CnnSpec deep;
  deep.input = {1, 3, 32, 32};
  deep.conv_stages = {{40, 3, 2}, {40, 3, 2}, {40, 3, 1}};
  deep.dense_stages = {{300}};
  deep.num_classes = 10;
  nn::CnnSpec shallow;
  shallow.input = {1, 3, 32, 32};
  shallow.conv_stages = {{40, 3, 2}};
  shallow.dense_stages = {{300}};
  shallow.num_classes = 10;

  const CostModel server(gtx1070());
  const CostModel embedded(tegra_tx1());
  const double server_ratio =
      server.power_demand(deep) / server.power_demand(shallow);
  const double embedded_ratio =
      embedded.power_demand(deep) / embedded.power_demand(shallow);
  EXPECT_GT(embedded_ratio, server_ratio);
}

TEST(CostModel, LatencyPositiveAndScalesWithWork) {
  const CostModel cm(tegra_tx1());
  const double small = cm.evaluate(mnist_like(20, 2, 3, 200)).latency_ms;
  const double large = cm.evaluate(mnist_like(80, 5, 1, 700)).latency_ms;
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
}

TEST(CostModel, EmbeddedSlowerThanServer) {
  const auto spec = mnist_like();
  const double server = CostModel(gtx1070()).evaluate(spec).latency_ms;
  const double embedded = CostModel(tegra_tx1()).evaluate(spec).latency_ms;
  EXPECT_GT(embedded, server);
}

TEST(CostModel, MemoryIncludesRuntimeOverhead) {
  const DeviceSpec dev = gtx1070();
  const CostModel cm(dev);
  EXPECT_GT(cm.evaluate(mnist_like()).memory_mb, dev.runtime_overhead_mb * 0.9);
}

TEST(CostModel, MemoryRoundedToAllocatorGranularity) {
  CostModelOptions opt;
  opt.allocator_granularity_mb = 2.0;
  opt.systematic_deviation_sd = 0.0;  // disable noise to observe rounding
  const CostModel cm(gtx1070(), opt);
  const double mem = cm.evaluate(mnist_like()).memory_mb;
  EXPECT_NEAR(std::fmod(mem, 2.0), 0.0, 1e-9);
}

TEST(CostModel, HashSpecSensitiveToEveryStructuralField) {
  const auto base = CostModel::hash_spec(mnist_like());
  EXPECT_NE(base, CostModel::hash_spec(mnist_like(41)));
  EXPECT_NE(base, CostModel::hash_spec(mnist_like(40, 4)));
  EXPECT_NE(base, CostModel::hash_spec(mnist_like(40, 3, 3)));
  EXPECT_NE(base, CostModel::hash_spec(mnist_like(40, 3, 2, 401)));
}

TEST(CostModel, SystematicDeviationDiffersAcrossDevices) {
  const auto spec = mnist_like();
  CostModelOptions opt;
  opt.systematic_deviation_sd = 0.05;
  const double a = CostModel(gtx1070(), opt).evaluate(spec).average_power_w /
                   gtx1070().tdp_w;
  const double b =
      CostModel(gtx1080ti(), opt).evaluate(spec).average_power_w /
      gtx1080ti().tdp_w;
  EXPECT_NE(a, b);  // different deviation streams per device
}

TEST(CostModel, UtilizationInUnitRange) {
  for (const DeviceSpec& dev : all_devices()) {
    const CostModel cm(dev);
    const double u = cm.evaluate(mnist_like(80, 5, 1, 700)).utilization;
    EXPECT_GT(u, 0.0) << dev.name;
    EXPECT_LT(u, 1.0) << dev.name;
  }
}

TEST(CostModel, InfeasibleSpecThrows) {
  nn::CnnSpec bad;
  bad.input = {1, 1, 6, 6};
  bad.conv_stages = {{4, 5, 3}, {4, 5, 1}};
  bad.num_classes = 10;
  const CostModel cm(gtx1070());
  EXPECT_THROW((void)cm.evaluate(bad), std::invalid_argument);
}

}  // namespace
}  // namespace hp::hw
