#include "hw/device.hpp"

#include <gtest/gtest.h>

namespace hp::hw {
namespace {

TEST(DeviceDb, PaperDevicesPresent) {
  const DeviceSpec gtx = gtx1070();
  EXPECT_EQ(gtx.name, "GTX 1070");
  EXPECT_TRUE(gtx.supports_memory_query);
  const DeviceSpec tx1 = tegra_tx1();
  EXPECT_EQ(tx1.name, "Tegra TX1");
  // Paper footnote 1: Tegra exposes no memory counter.
  EXPECT_FALSE(tx1.supports_memory_query);
}

TEST(DeviceDb, PhysicallyPlausibleNumbers) {
  for (const DeviceSpec& d : all_devices()) {
    EXPECT_GT(d.sm_count, 0u) << d.name;
    EXPECT_GT(d.fp32_tflops, 0.0) << d.name;
    EXPECT_GT(d.tdp_w, d.idle_power_w) << d.name;
    EXPECT_GT(d.idle_power_w, 0.0) << d.name;
    EXPECT_GT(d.dram_gb, 0.0) << d.name;
    EXPECT_GT(d.power_demand_half_sat, 0.0) << d.name;
    EXPECT_GT(d.power_depth_attenuation, 0.0) << d.name;
    EXPECT_LE(d.power_depth_attenuation, 1.0) << d.name;
  }
}

TEST(DeviceDb, ServerOutclassesEmbedded) {
  EXPECT_GT(gtx1070().fp32_tflops, 5.0 * tegra_tx1().fp32_tflops);
  EXPECT_GT(gtx1070().tdp_w, 5.0 * tegra_tx1().tdp_w);
}

TEST(DeviceDb, FindDeviceByName) {
  const auto found = find_device("Tegra TX1");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->name, "Tegra TX1");
  EXPECT_FALSE(find_device("GTX 9999").has_value());
}

TEST(DeviceDb, AllDevicesHasAtLeastFour) {
  EXPECT_GE(all_devices().size(), 4u);
}

}  // namespace
}  // namespace hp::hw
