#include "hw/gpu_simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hp::hw {
namespace {

nn::CnnSpec small_spec() {
  nn::CnnSpec spec;
  spec.input = {1, 1, 28, 28};
  spec.conv_stages = {{30, 3, 2}};
  spec.dense_stages = {{300}};
  spec.num_classes = 10;
  return spec;
}

TEST(GpuSimulator, IdlePowerNearIdleFloor) {
  GpuSimulator sim(gtx1070(), 1);
  double sum = 0.0;
  for (int i = 0; i < 200; ++i) sum += sim.read_power_w();
  EXPECT_NEAR(sum / 200.0, gtx1070().idle_power_w, 2.0);
}

TEST(GpuSimulator, ActiveInferenceRaisesPower) {
  GpuSimulator sim(gtx1070(), 2);
  sim.load_model(small_spec());
  double idle = 0.0;
  for (int i = 0; i < 50; ++i) idle += sim.read_power_w();
  sim.set_inference_active(true);
  double active = 0.0;
  for (int i = 0; i < 50; ++i) active += sim.read_power_w();
  EXPECT_GT(active / 50.0, idle / 50.0 + 10.0);
}

TEST(GpuSimulator, ReadingsAreNoisyAroundTruth) {
  GpuSimulator sim(gtx1070(), 3);
  sim.load_model(small_spec());
  sim.set_inference_active(true);
  const double truth = sim.loaded_cost().average_power_w;
  double sum = 0.0, sum2 = 0.0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const double p = sim.read_power_w();
    sum += p;
    sum2 += p * p;
  }
  const double mean = sum / n;
  const double sd = std::sqrt(sum2 / n - mean * mean);
  EXPECT_NEAR(mean, truth, truth * 0.01);
  EXPECT_GT(sd, 0.0);
  EXPECT_LT(sd, truth * 0.05);
}

TEST(GpuSimulator, SetActiveWithoutModelThrows) {
  GpuSimulator sim(gtx1070(), 4);
  EXPECT_THROW(sim.set_inference_active(true), std::logic_error);
}

TEST(GpuSimulator, MemoryInfoPresentOnServerAbsentOnTegra) {
  GpuSimulator server(gtx1070(), 5);
  server.load_model(small_spec());
  const auto info = server.memory_info();
  ASSERT_TRUE(info.has_value());
  EXPECT_GT(info->used_mb, 0.0);
  EXPECT_EQ(info->total_mb, gtx1070().dram_gb * 1024.0);
  EXPECT_LT(info->used_mb, info->total_mb);

  GpuSimulator tegra(tegra_tx1(), 6);
  tegra.load_model(small_spec());
  EXPECT_FALSE(tegra.memory_info().has_value());
}

TEST(GpuSimulator, UnloadResetsState) {
  GpuSimulator sim(gtx1070(), 7);
  sim.load_model(small_spec());
  EXPECT_TRUE(sim.model_loaded());
  sim.unload_model();
  EXPECT_FALSE(sim.model_loaded());
  EXPECT_THROW((void)sim.inference_latency_ms(), std::logic_error);
  EXPECT_THROW((void)sim.loaded_cost(), std::logic_error);
}

TEST(GpuSimulator, LoadUpdatesMemoryInfo) {
  GpuSimulator sim(gtx1070(), 8);
  const double before = sim.memory_info()->used_mb;
  sim.load_model(small_spec());
  const double after = sim.memory_info()->used_mb;
  EXPECT_GT(after, before);
}

TEST(GpuSimulator, InferenceLatencyMatchesCostModel) {
  GpuSimulator sim(gtx1070(), 9);
  sim.load_model(small_spec());
  EXPECT_DOUBLE_EQ(sim.inference_latency_ms(),
                   sim.cost_model().evaluate(small_spec()).latency_ms);
}

TEST(GpuSimulator, OversizedModelRejected) {
  DeviceSpec tiny = gtx1070();
  tiny.dram_gb = 0.1;  // 100 MB device
  GpuSimulator sim(tiny, 10);
  EXPECT_THROW(sim.load_model(small_spec()), std::runtime_error);
  EXPECT_FALSE(sim.model_loaded());
}

}  // namespace
}  // namespace hp::hw
