// Tests for the nvprof-style per-layer timing path added for the
// NeuralPower-style layer-wise models.

#include <gtest/gtest.h>

#include "hw/profiler.hpp"

namespace hp::hw {
namespace {

nn::CnnSpec sample_spec() {
  nn::CnnSpec spec;
  spec.input = {1, 3, 32, 32};
  spec.conv_stages = {{30, 3, 2}, {40, 3, 2}};
  spec.dense_stages = {{300}};
  spec.num_classes = 10;
  return spec;
}

TEST(LayerProfiling, CostModelBreakdownSumsToTotal) {
  const CostModel cm(gtx1070());
  const InferenceCost cost = cm.evaluate(sample_spec());
  ASSERT_FALSE(cost.layers.empty());
  double sum = 0.0;
  for (const LayerCost& layer : cost.layers) sum += layer.latency_ms;
  EXPECT_NEAR(sum, cost.latency_ms, 1e-9);
}

TEST(LayerProfiling, BreakdownMatchesWorkloadLayerOrder) {
  const CostModel cm(gtx1070());
  const auto spec = sample_spec();
  const InferenceCost cost = cm.evaluate(spec);
  const nn::WorkloadSummary workload = nn::compute_workload(spec);
  ASSERT_EQ(cost.layers.size(), workload.layers.size());
  for (std::size_t i = 0; i < cost.layers.size(); ++i) {
    EXPECT_EQ(cost.layers[i].name, workload.layers[i].name);
    EXPECT_GT(cost.layers[i].latency_ms, 0.0);
  }
}

TEST(LayerProfiling, EnergyIsPowerTimesLatency) {
  const CostModel cm(gtx1070());
  const InferenceCost cost = cm.evaluate(sample_spec());
  EXPECT_NEAR(cost.energy_j(),
              cost.average_power_w * cost.latency_ms / 1e3, 1e-12);
  EXPECT_GT(cost.energy_j(), 0.0);
}

TEST(LayerProfiling, SimulatorTimingsNoisyAroundTruth) {
  GpuSimulator sim(gtx1070(), 4);
  sim.load_model(sample_spec());
  const auto truth = sim.loaded_cost().layers;
  const auto noisy = sim.profile_layers(0.03);
  ASSERT_EQ(noisy.size(), truth.size());
  bool any_different = false;
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    EXPECT_EQ(noisy[i].name, truth[i].name);
    EXPECT_NEAR(noisy[i].latency_ms, truth[i].latency_ms,
                truth[i].latency_ms * 0.25);
    if (noisy[i].latency_ms != truth[i].latency_ms) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(LayerProfiling, ZeroNoiseReproducesTruth) {
  GpuSimulator sim(gtx1070(), 5);
  sim.load_model(sample_spec());
  const auto truth = sim.loaded_cost().layers;
  const auto exact = sim.profile_layers(0.0);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(exact[i].latency_ms, truth[i].latency_ms);
  }
}

TEST(LayerProfiling, RequiresLoadedModel) {
  GpuSimulator sim(gtx1070(), 6);
  EXPECT_THROW((void)sim.profile_layers(0.03), std::logic_error);
}

TEST(LayerProfiling, ProfilerCollectsTimingsOnlyWhenAsked) {
  GpuSimulator sim(gtx1070(), 7);
  {
    InferenceProfiler plain(sim);
    EXPECT_TRUE(plain.profile(sample_spec()).layer_timings.empty());
  }
  {
    ProfilerOptions options;
    options.collect_layer_timings = true;
    InferenceProfiler collecting(sim, options);
    const auto sample = collecting.profile(sample_spec());
    EXPECT_FALSE(sample.layer_timings.empty());
    double sum = 0.0;
    for (const auto& layer : sample.layer_timings) sum += layer.latency_ms;
    // Noisy per-layer timings sum to roughly the reported total latency.
    EXPECT_NEAR(sum, sample.latency_ms, sample.latency_ms * 0.2);
  }
}

TEST(LayerProfiling, SampleEnergyConsistent) {
  GpuSimulator sim(gtx1070(), 8);
  InferenceProfiler profiler(sim);
  const auto sample = profiler.profile(sample_spec());
  EXPECT_NEAR(sample.energy_j(),
              sample.power_w * sample.latency_ms / 1e3, 1e-12);
}

}  // namespace
}  // namespace hp::hw
