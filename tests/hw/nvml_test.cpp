#include "hw/nvml.hpp"

#include <gtest/gtest.h>

namespace hp::hw::nvml {
namespace {

nn::CnnSpec small_spec() {
  nn::CnnSpec spec;
  spec.input = {1, 1, 28, 28};
  spec.conv_stages = {{30, 3, 2}};
  spec.dense_stages = {{300}};
  spec.num_classes = 10;
  return spec;
}

class NvmlTest : public ::testing::Test {
 protected:
  NvmlTest() : server_(gtx1070(), 1), tegra_(tegra_tx1(), 2) {
    server_handle_ = session_.add_device(&server_);
    tegra_handle_ = session_.add_device(&tegra_);
  }
  GpuSimulator server_;
  GpuSimulator tegra_;
  Session session_;
  std::size_t server_handle_ = 0;
  std::size_t tegra_handle_ = 0;
};

TEST_F(NvmlTest, UninitializedCallsFail) {
  unsigned count = 0;
  EXPECT_EQ(session_.device_get_count(&count), Return::ErrorUninitialized);
  unsigned mw = 0;
  EXPECT_EQ(session_.device_get_power_usage(server_handle_, &mw),
            Return::ErrorUninitialized);
}

TEST_F(NvmlTest, InitShutdownLifecycle) {
  EXPECT_EQ(session_.init(), Return::Success);
  EXPECT_EQ(session_.shutdown(), Return::Success);
  EXPECT_EQ(session_.shutdown(), Return::ErrorUninitialized);
}

TEST_F(NvmlTest, DeviceCountAndName) {
  ASSERT_EQ(session_.init(), Return::Success);
  unsigned count = 0;
  EXPECT_EQ(session_.device_get_count(&count), Return::Success);
  EXPECT_EQ(count, 2u);
  std::string name;
  EXPECT_EQ(session_.device_get_name(server_handle_, &name), Return::Success);
  EXPECT_EQ(name, "GTX 1070");
}

TEST_F(NvmlTest, NullPointersAreInvalidArguments) {
  ASSERT_EQ(session_.init(), Return::Success);
  EXPECT_EQ(session_.device_get_count(nullptr), Return::ErrorInvalidArgument);
  EXPECT_EQ(session_.device_get_name(server_handle_, nullptr),
            Return::ErrorInvalidArgument);
  EXPECT_EQ(session_.device_get_power_usage(server_handle_, nullptr),
            Return::ErrorInvalidArgument);
  EXPECT_EQ(session_.device_get_memory_info(server_handle_, nullptr),
            Return::ErrorInvalidArgument);
}

TEST_F(NvmlTest, UnknownHandleNotFound) {
  ASSERT_EQ(session_.init(), Return::Success);
  unsigned mw = 0;
  EXPECT_EQ(session_.device_get_power_usage(99, &mw), Return::ErrorNotFound);
}

TEST_F(NvmlTest, PowerUsageReportedInMilliwatts) {
  ASSERT_EQ(session_.init(), Return::Success);
  unsigned mw = 0;
  ASSERT_EQ(session_.device_get_power_usage(server_handle_, &mw),
            Return::Success);
  // Idle GTX 1070 is ~35 W = ~35000 mW.
  EXPECT_GT(mw, 20000u);
  EXPECT_LT(mw, 60000u);
}

TEST_F(NvmlTest, MemoryInfoInBytesOnServer) {
  ASSERT_EQ(session_.init(), Return::Success);
  server_.load_model(small_spec());
  Memory mem;
  ASSERT_EQ(session_.device_get_memory_info(server_handle_, &mem),
            Return::Success);
  EXPECT_EQ(mem.total, static_cast<std::uint64_t>(8.0 * 1024 * 1024 * 1024));
  EXPECT_GT(mem.used, 100ull * 1024 * 1024);
  EXPECT_EQ(mem.free, mem.total - mem.used);
}

TEST_F(NvmlTest, MemoryInfoNotSupportedOnTegra) {
  // Paper footnote 1: Tegra does not support the NVML memory query.
  ASSERT_EQ(session_.init(), Return::Success);
  tegra_.load_model(small_spec());
  Memory mem;
  EXPECT_EQ(session_.device_get_memory_info(tegra_handle_, &mem),
            Return::ErrorNotSupported);
}

TEST_F(NvmlTest, PowerQueryWorksOnTegra) {
  ASSERT_EQ(session_.init(), Return::Success);
  unsigned mw = 0;
  EXPECT_EQ(session_.device_get_power_usage(tegra_handle_, &mw),
            Return::Success);
  EXPECT_GT(mw, 1000u);   // > 1 W
  EXPECT_LT(mw, 20000u);  // < 20 W
}

TEST_F(NvmlTest, InjectedPowerFaultSurfacesAsErrorUnknown) {
  ASSERT_EQ(session_.init(), Return::Success);
  SensorFaultSpec faults;
  faults.failure_rate = 1.0;
  server_.set_sensor_faults(faults);
  unsigned mw = 0;
  EXPECT_EQ(session_.device_get_power_usage(server_handle_, &mw),
            Return::ErrorUnknown);
  // The session survives the failed read; disarming the fault heals it.
  faults.failure_rate = 0.0;
  server_.set_sensor_faults(faults);
  EXPECT_EQ(session_.device_get_power_usage(server_handle_, &mw),
            Return::Success);
}

TEST_F(NvmlTest, InjectedMemoryFaultIsTypedNotASentinel) {
  ASSERT_EQ(session_.init(), Return::Success);
  server_.load_model(small_spec());
  SensorFaultSpec faults;
  faults.failure_rate = 1.0;
  faults.fail_memory = true;
  server_.set_sensor_faults(faults);
  Memory mem;
  // Transient read failure: ErrorUnknown, NOT the permanent
  // ErrorNotSupported the old sentinel path conflated it with.
  EXPECT_EQ(session_.device_get_memory_info(server_handle_, &mem),
            Return::ErrorUnknown);
  faults.failure_rate = 0.0;
  server_.set_sensor_faults(faults);
  EXPECT_EQ(session_.device_get_memory_info(server_handle_, &mem),
            Return::Success);
  EXPECT_GT(mem.used, 0u);
}

TEST_F(NvmlTest, MemoryFaultScheduleIsDeterministic) {
  ASSERT_EQ(session_.init(), Return::Success);
  SensorFaultSpec faults;
  faults.failure_rate = 0.5;
  faults.fail_memory = true;
  faults.seed = 77;
  const auto pattern = [&] {
    server_.set_sensor_faults(faults);  // resets the fault stream
    std::vector<Return> results;
    Memory mem;
    for (int i = 0; i < 32; ++i) {
      results.push_back(session_.device_get_memory_info(server_handle_, &mem));
    }
    return results;
  };
  EXPECT_EQ(pattern(), pattern());
}

TEST(NvmlStrings, ErrorStringsDistinct) {
  EXPECT_EQ(error_string(Return::Success), "Success");
  EXPECT_NE(error_string(Return::ErrorNotSupported),
            error_string(Return::ErrorNotFound));
}

}  // namespace
}  // namespace hp::hw::nvml
