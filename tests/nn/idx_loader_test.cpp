#include "nn/idx_loader.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "stats/rng.hpp"

namespace hp::nn {
namespace {

Tensor sample_images(std::size_t n = 5, std::size_t size = 8) {
  stats::Rng rng(3);
  Tensor images({n, 1, size, size});
  for (float& x : images.flat()) {
    x = static_cast<float>(rng.uniform());
  }
  return images;
}

TEST(IdxLoader, ImageRoundTripWithinQuantization) {
  const Tensor original = sample_images();
  std::stringstream buffer;
  save_idx_images(original, buffer);
  const Tensor loaded = load_idx_images(buffer);
  ASSERT_EQ(loaded.shape(), original.shape());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_NEAR(loaded.flat()[i], original.flat()[i], 1.0F / 255.0F);
  }
}

TEST(IdxLoader, LabelRoundTripExact) {
  const std::vector<std::uint8_t> labels{0, 1, 2, 9, 5, 3};
  std::stringstream buffer;
  save_idx_labels(labels, buffer);
  EXPECT_EQ(load_idx_labels(buffer), labels);
}

TEST(IdxLoader, PixelValuesClampedOnSave) {
  Tensor images({1, 1, 1, 2});
  images.flat()[0] = -0.5F;
  images.flat()[1] = 2.0F;
  std::stringstream buffer;
  save_idx_images(images, buffer);
  const Tensor loaded = load_idx_images(buffer);
  EXPECT_EQ(loaded.flat()[0], 0.0F);
  EXPECT_EQ(loaded.flat()[1], 1.0F);
}

TEST(IdxLoader, RejectsBadMagic) {
  std::stringstream buffer;
  save_idx_labels({1, 2}, buffer);  // label magic where images expected
  EXPECT_THROW((void)load_idx_images(buffer), std::runtime_error);
  std::stringstream buffer2;
  save_idx_images(sample_images(1), buffer2);
  EXPECT_THROW((void)load_idx_labels(buffer2), std::runtime_error);
}

TEST(IdxLoader, RejectsTruncatedData) {
  std::stringstream buffer;
  save_idx_images(sample_images(3), buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() - 10));
  EXPECT_THROW((void)load_idx_images(truncated), std::runtime_error);
}

TEST(IdxLoader, RejectsEmptyStream) {
  std::stringstream buffer;
  EXPECT_THROW((void)load_idx_images(buffer), std::runtime_error);
}

TEST(IdxLoader, MultiChannelSaveRejected) {
  Tensor rgb({1, 3, 2, 2});
  std::stringstream buffer;
  EXPECT_THROW(save_idx_images(rgb, buffer), std::runtime_error);
}

TEST(IdxLoader, DatasetFilePairRoundTrip) {
  const std::string images_path = ::testing::TempDir() + "/idx_images_test";
  const std::string labels_path = ::testing::TempDir() + "/idx_labels_test";
  {
    std::ofstream images_file(images_path, std::ios::binary);
    save_idx_images(sample_images(4, 6), images_file);
    std::ofstream labels_file(labels_path, std::ios::binary);
    save_idx_labels({0, 1, 2, 3}, labels_file);
  }
  const Dataset ds = load_idx_dataset(images_path, labels_path);
  EXPECT_EQ(ds.size(), 4u);
  EXPECT_EQ(ds.item_shape(), (Shape{1, 1, 6, 6}));
  EXPECT_EQ(ds.num_classes(), 4u);
  std::remove(images_path.c_str());
  std::remove(labels_path.c_str());
}

TEST(IdxLoader, DatasetCountMismatchThrows) {
  const std::string images_path = ::testing::TempDir() + "/idx_mm_images";
  const std::string labels_path = ::testing::TempDir() + "/idx_mm_labels";
  {
    std::ofstream images_file(images_path, std::ios::binary);
    save_idx_images(sample_images(4, 6), images_file);
    std::ofstream labels_file(labels_path, std::ios::binary);
    save_idx_labels({0, 1}, labels_file);
  }
  EXPECT_THROW((void)load_idx_dataset(images_path, labels_path),
               std::runtime_error);
  std::remove(images_path.c_str());
  std::remove(labels_path.c_str());
}

TEST(IdxLoader, MissingFileThrows) {
  EXPECT_THROW((void)load_idx_dataset("/nonexistent/images", "/nonexistent/labels"),
               std::runtime_error);
}

TEST(IdxLoader, LoadedDatasetIsTrainable) {
  // The loaded dataset plugs straight into gather() as the trainer uses it.
  const std::string images_path = ::testing::TempDir() + "/idx_train_images";
  const std::string labels_path = ::testing::TempDir() + "/idx_train_labels";
  {
    std::ofstream images_file(images_path, std::ios::binary);
    save_idx_images(sample_images(10, 8), images_file);
    std::ofstream labels_file(labels_path, std::ios::binary);
    save_idx_labels({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, labels_file);
  }
  const Dataset ds = load_idx_dataset(images_path, labels_path);
  Tensor batch;
  std::vector<std::uint8_t> batch_labels;
  const std::vector<std::size_t> idx{1, 3, 5};
  ds.gather(idx, batch, batch_labels);
  EXPECT_EQ(batch.shape().n, 3u);
  EXPECT_EQ(batch_labels[2], 5);
  std::remove(images_path.c_str());
  std::remove(labels_path.c_str());
}

}  // namespace
}  // namespace hp::nn
