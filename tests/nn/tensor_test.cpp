#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace hp::nn {
namespace {

TEST(Shape, CountAndPerItem) {
  Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.count(), 120u);
  EXPECT_EQ(s.per_item(), 60u);
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{1, 2, 3, 4}), (Shape{1, 2, 3, 4}));
  EXPECT_NE((Shape{1, 2, 3, 4}), (Shape{1, 2, 4, 3}));
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({1, 2, 2, 2});
  for (float x : t.flat()) EXPECT_EQ(x, 0.0F);
}

TEST(Tensor, CheckedAccessRoundTrip) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0F;
  EXPECT_EQ(t.at(1, 2, 3, 4), 7.0F);
  // Row-major layout: ((n*C + c)*H + h)*W + w.
  EXPECT_EQ(t.flat()[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0F);
}

TEST(Tensor, OutOfRangeThrows) {
  Tensor t({1, 1, 2, 2});
  EXPECT_THROW((void)t.at(1, 0, 0, 0), std::out_of_range);
  EXPECT_THROW((void)t.at(0, 1, 0, 0), std::out_of_range);
  EXPECT_THROW((void)t.at(0, 0, 2, 0), std::out_of_range);
  EXPECT_THROW((void)t.at(0, 0, 0, 2), std::out_of_range);
}

TEST(Tensor, ItemPointsToBatchSlice) {
  Tensor t({2, 1, 2, 2});
  t.at(1, 0, 0, 0) = 5.0F;
  EXPECT_EQ(t.item(1)[0], 5.0F);
  EXPECT_EQ(t.item(0)[0], 0.0F);
}

TEST(Tensor, FillAndReshape) {
  Tensor t({1, 1, 2, 2});
  t.fill(3.0F);
  EXPECT_EQ(t.at(0, 0, 1, 1), 3.0F);
  t.reshape({1, 2, 1, 1});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.at(0, 1, 0, 0), 0.0F);  // reshape zero-fills
}

TEST(Tensor, SquaredNorm) {
  Tensor t({1, 1, 1, 2});
  t.at(0, 0, 0, 0) = 3.0F;
  t.at(0, 0, 0, 1) = 4.0F;
  EXPECT_DOUBLE_EQ(t.squared_norm(), 25.0);
}

TEST(Tensor, HasNonFiniteDetectsNanAndInf) {
  Tensor t({1, 1, 1, 3});
  EXPECT_FALSE(t.has_non_finite());
  t.at(0, 0, 0, 1) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(t.has_non_finite());
  t.at(0, 0, 0, 1) = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(t.has_non_finite());
}

}  // namespace
}  // namespace hp::nn
