#include "nn/extra_layers.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hp::nn {
namespace {

TEST(AvgPool, ValidatesKernel) {
  EXPECT_THROW(AvgPoolLayer(0), std::invalid_argument);
}

TEST(AvgPool, OutputShapeFloors) {
  AvgPoolLayer pool(2);
  EXPECT_EQ(pool.output_shape({1, 3, 5, 7}), (Shape{1, 3, 2, 3}));
  EXPECT_THROW((void)pool.output_shape({1, 1, 1, 1}), std::invalid_argument);
}

TEST(AvgPool, ComputesWindowMean) {
  AvgPoolLayer pool(2);
  Tensor in({1, 1, 2, 2});
  in.at(0, 0, 0, 0) = 1.0F;
  in.at(0, 0, 0, 1) = 2.0F;
  in.at(0, 0, 1, 0) = 3.0F;
  in.at(0, 0, 1, 1) = 6.0F;
  Tensor out;
  pool.forward(in, out);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 3.0F);
}

TEST(AvgPool, BackwardSpreadsGradientEvenly) {
  AvgPoolLayer pool(2);
  Tensor in({1, 1, 2, 2});
  Tensor out;
  pool.forward(in, out);
  Tensor go({1, 1, 1, 1});
  go.fill(4.0F);
  Tensor gi;
  pool.backward(in, go, gi);
  for (float g : gi.flat()) EXPECT_FLOAT_EQ(g, 1.0F);
}

TEST(AvgPool, GradientMatchesFiniteDifference) {
  AvgPoolLayer pool(2);
  stats::Rng rng(3);
  Tensor in({1, 2, 4, 4});
  for (float& x : in.flat()) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  Tensor out;
  pool.forward(in, out);
  Tensor go(out.shape());
  for (float& g : go.flat()) g = static_cast<float>(rng.uniform(-1.0, 1.0));
  Tensor gi;
  pool.backward(in, go, gi);
  const double eps = 1e-2;
  for (std::size_t i = 0; i < in.size(); i += 3) {
    const float saved = in.flat()[i];
    const auto loss = [&](float v) {
      in.flat()[i] = v;
      Tensor o;
      pool.forward(in, o);
      double acc = 0.0;
      for (std::size_t k = 0; k < o.size(); ++k) {
        acc += static_cast<double>(o.flat()[k]) *
               static_cast<double>(go.flat()[k]);
      }
      return acc;
    };
    const double num = (loss(saved + static_cast<float>(eps)) -
                        loss(saved - static_cast<float>(eps))) /
                       (2 * eps);
    in.flat()[i] = saved;
    EXPECT_NEAR(static_cast<double>(gi.flat()[i]), num, 1e-3) << i;
  }
}

TEST(Dropout, ValidatesProbability) {
  EXPECT_THROW(DropoutLayer(-0.1), std::invalid_argument);
  EXPECT_THROW(DropoutLayer(1.0), std::invalid_argument);
  EXPECT_NO_THROW(DropoutLayer(0.0));
}

TEST(Dropout, InferenceModeIsIdentity) {
  DropoutLayer dropout(0.5);
  dropout.set_training(false);
  Tensor in({1, 1, 1, 8});
  for (std::size_t i = 0; i < 8; ++i) in.flat()[i] = static_cast<float>(i);
  Tensor out;
  dropout.forward(in, out);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out.flat()[i], in.flat()[i]);
  }
}

TEST(Dropout, TrainingDropsAndRescales) {
  DropoutLayer dropout(0.5);
  stats::Rng rng(7);
  dropout.initialize(rng);
  Tensor in({1, 1, 1, 2000});
  in.fill(1.0F);
  Tensor out;
  dropout.forward(in, out);
  std::size_t zeros = 0;
  double sum = 0.0;
  for (float v : out.flat()) {
    if (v == 0.0F) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0F);  // survivors scaled by 1/(1-p)
    }
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 2000.0, 0.5, 0.05);
  // Expectation preserved.
  EXPECT_NEAR(sum / 2000.0, 1.0, 0.1);
}

TEST(Dropout, BackwardUsesSameMask) {
  DropoutLayer dropout(0.5);
  stats::Rng rng(9);
  dropout.initialize(rng);
  Tensor in({1, 1, 1, 100});
  in.fill(1.0F);
  Tensor out;
  dropout.forward(in, out);
  Tensor go(in.shape());
  go.fill(1.0F);
  Tensor gi;
  dropout.backward(in, go, gi);
  for (std::size_t i = 0; i < 100; ++i) {
    // Gradient flows exactly where the activation survived.
    EXPECT_EQ(gi.flat()[i], out.flat()[i]);
  }
}

TEST(Dropout, BackwardBeforeForwardThrows) {
  DropoutLayer dropout(0.3);
  Tensor in({1, 1, 1, 4});
  Tensor go({1, 1, 1, 4});
  Tensor gi;
  EXPECT_THROW(dropout.backward(in, go, gi), std::logic_error);
}

TEST(Sigmoid, ForwardValues) {
  SigmoidLayer sigmoid;
  Tensor in({1, 1, 1, 3});
  in.flat()[0] = 0.0F;
  in.flat()[1] = 100.0F;
  in.flat()[2] = -100.0F;
  Tensor out;
  sigmoid.forward(in, out);
  EXPECT_FLOAT_EQ(out.flat()[0], 0.5F);
  EXPECT_NEAR(out.flat()[1], 1.0F, 1e-6F);
  EXPECT_NEAR(out.flat()[2], 0.0F, 1e-6F);
}

TEST(Sigmoid, GradientMatchesClosedForm) {
  SigmoidLayer sigmoid;
  Tensor in({1, 1, 1, 1});
  in.flat()[0] = 0.7F;
  Tensor out;
  sigmoid.forward(in, out);
  Tensor go(in.shape());
  go.fill(1.0F);
  Tensor gi;
  sigmoid.backward(in, go, gi);
  const double y = 1.0 / (1.0 + std::exp(-0.7));
  EXPECT_NEAR(static_cast<double>(gi.flat()[0]), y * (1.0 - y), 1e-6);
}

TEST(Tanh, ForwardAndGradient) {
  TanhLayer tanh_layer;
  Tensor in({1, 1, 1, 2});
  in.flat()[0] = 0.0F;
  in.flat()[1] = 1.2F;
  Tensor out;
  tanh_layer.forward(in, out);
  EXPECT_FLOAT_EQ(out.flat()[0], 0.0F);
  EXPECT_NEAR(out.flat()[1], std::tanh(1.2F), 1e-6F);
  Tensor go(in.shape());
  go.fill(1.0F);
  Tensor gi;
  tanh_layer.backward(in, go, gi);
  const double y = std::tanh(1.2);
  EXPECT_NEAR(static_cast<double>(gi.flat()[1]), 1.0 - y * y, 1e-6);
  EXPECT_NEAR(static_cast<double>(gi.flat()[0]), 1.0, 1e-6);
}

TEST(ExtraLayers, BackwardBeforeForwardThrows) {
  Tensor in({1, 1, 1, 2});
  Tensor go({1, 1, 1, 2});
  Tensor gi;
  SigmoidLayer sigmoid;
  EXPECT_THROW(sigmoid.backward(in, go, gi), std::logic_error);
  TanhLayer tanh_layer;
  EXPECT_THROW(tanh_layer.backward(in, go, gi), std::logic_error);
}

TEST(ExtraLayers, HaveNoParameters) {
  AvgPoolLayer avg(2);
  DropoutLayer drop(0.5);
  SigmoidLayer sig;
  TanhLayer tanh_layer;
  EXPECT_TRUE(avg.parameters().empty());
  EXPECT_TRUE(drop.parameters().empty());
  EXPECT_TRUE(sig.parameters().empty());
  EXPECT_TRUE(tanh_layer.parameters().empty());
}

}  // namespace
}  // namespace hp::nn
