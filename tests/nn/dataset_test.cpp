#include "nn/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace hp::nn {
namespace {

SyntheticDataOptions small_options() {
  SyntheticDataOptions opt;
  opt.train_size = 50;
  opt.test_size = 30;
  opt.image_size = 12;
  opt.seed = 7;
  return opt;
}

TEST(Dataset, ImageLabelMismatchThrows) {
  Tensor images({3, 1, 4, 4});
  std::vector<std::uint8_t> labels{0, 1};
  EXPECT_THROW(Dataset(std::move(images), labels), std::invalid_argument);
}

TEST(Dataset, GatherCopiesCorrectItems) {
  Tensor images({3, 1, 1, 2});
  images.item(2)[0] = 9.0F;
  std::vector<std::uint8_t> labels{0, 1, 2};
  Dataset ds(std::move(images), labels);
  Tensor batch;
  std::vector<std::uint8_t> batch_labels;
  std::vector<std::size_t> idx{2, 0};
  ds.gather(idx, batch, batch_labels);
  EXPECT_EQ(batch.shape().n, 2u);
  EXPECT_EQ(batch.item(0)[0], 9.0F);
  EXPECT_EQ(batch_labels[0], 2);
  EXPECT_EQ(batch_labels[1], 0);
}

TEST(Dataset, GatherOutOfRangeThrows) {
  Tensor images({2, 1, 1, 1});
  Dataset ds(std::move(images), {0, 1});
  Tensor batch;
  std::vector<std::uint8_t> labels;
  std::vector<std::size_t> idx{5};
  EXPECT_THROW(ds.gather(idx, batch, labels), std::out_of_range);
}

class SyntheticGenerators
    : public ::testing::TestWithParam<std::pair<const char*, int>> {
 protected:
  DataSplit make() const {
    const auto opt = small_options();
    return GetParam().second == 1 ? make_synthetic_mnist(opt)
                                  : make_synthetic_cifar(opt);
  }
  std::size_t expected_channels() const {
    return GetParam().second == 1 ? 1u : 3u;
  }
};

TEST_P(SyntheticGenerators, ShapesAndSizes) {
  const DataSplit data = make();
  EXPECT_EQ(data.train.size(), 50u);
  EXPECT_EQ(data.test.size(), 30u);
  const Shape item = data.train.item_shape();
  EXPECT_EQ(item.c, expected_channels());
  EXPECT_EQ(item.h, 12u);
  EXPECT_EQ(item.w, 12u);
}

TEST_P(SyntheticGenerators, AllTenClassesPresent) {
  const DataSplit data = make();
  std::set<std::uint8_t> classes(data.train.labels().begin(),
                                 data.train.labels().end());
  EXPECT_EQ(classes.size(), 10u);
  EXPECT_EQ(data.train.num_classes(), 10u);
}

TEST_P(SyntheticGenerators, PixelsFiniteAndRoughlyNormalized) {
  const DataSplit data = make();
  double sum = 0.0;
  std::size_t n = 0;
  for (float x : data.train.images().flat()) {
    ASSERT_TRUE(std::isfinite(x));
    sum += static_cast<double>(x);
    ++n;
  }
  const double mean = sum / static_cast<double>(n);
  EXPECT_GT(mean, 0.1);
  EXPECT_LT(mean, 0.9);
}

TEST_P(SyntheticGenerators, DeterministicForSeed) {
  const DataSplit a = make();
  const DataSplit b = make();
  EXPECT_EQ(a.train.images().flat()[0], b.train.images().flat()[0]);
  EXPECT_EQ(a.test.images().flat()[100], b.test.images().flat()[100]);
}

TEST_P(SyntheticGenerators, DifferentSeedsDiffer) {
  auto opt = small_options();
  const DataSplit a =
      GetParam().second == 1 ? make_synthetic_mnist(opt) : make_synthetic_cifar(opt);
  opt.seed = 8;
  const DataSplit b =
      GetParam().second == 1 ? make_synthetic_mnist(opt) : make_synthetic_cifar(opt);
  EXPECT_NE(a.train.images().flat()[0], b.train.images().flat()[0]);
}

TEST_P(SyntheticGenerators, ClassesAreSeparable) {
  // Same-class samples must be closer (on average) than cross-class
  // samples — otherwise the dataset is not learnable.
  const DataSplit data = make();
  const Dataset& train = data.train;
  const std::size_t dim = train.item_shape().per_item();
  double same = 0.0, cross = 0.0;
  std::size_t same_n = 0, cross_n = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    for (std::size_t j = i + 1; j < 30; ++j) {
      double d2 = 0.0;
      for (std::size_t k = 0; k < dim; ++k) {
        const double d = static_cast<double>(train.images().item(i)[k]) -
                         static_cast<double>(train.images().item(j)[k]);
        d2 += d * d;
      }
      if (train.labels()[i] == train.labels()[j]) {
        same += d2;
        ++same_n;
      } else {
        cross += d2;
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0u);
  ASSERT_GT(cross_n, 0u);
  EXPECT_LT(same / same_n, cross / cross_n);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SyntheticGenerators,
    ::testing::Values(std::pair<const char*, int>{"mnist", 1},
                      std::pair<const char*, int>{"cifar", 3}));

TEST(SyntheticData, InvalidOptionsThrow) {
  SyntheticDataOptions opt;
  opt.image_size = 2;
  EXPECT_THROW((void)make_synthetic_mnist(opt), std::invalid_argument);
  opt = {};
  opt.train_size = 0;
  EXPECT_THROW((void)make_synthetic_cifar(opt), std::invalid_argument);
}

}  // namespace
}  // namespace hp::nn
