#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pooling.hpp"
#include "nn/softmax.hpp"

namespace hp::nn {
namespace {

TEST(Relu, ForwardClampsNegatives) {
  ReluLayer relu;
  Tensor in({1, 1, 1, 4});
  in.at(0, 0, 0, 0) = -1.0F;
  in.at(0, 0, 0, 1) = 0.0F;
  in.at(0, 0, 0, 2) = 2.0F;
  in.at(0, 0, 0, 3) = -0.5F;
  Tensor out;
  relu.forward(in, out);
  EXPECT_EQ(out.at(0, 0, 0, 0), 0.0F);
  EXPECT_EQ(out.at(0, 0, 0, 1), 0.0F);
  EXPECT_EQ(out.at(0, 0, 0, 2), 2.0F);
  EXPECT_EQ(out.at(0, 0, 0, 3), 0.0F);
}

TEST(Relu, BackwardMasksGradient) {
  ReluLayer relu;
  Tensor in({1, 1, 1, 2});
  in.at(0, 0, 0, 0) = -1.0F;
  in.at(0, 0, 0, 1) = 1.0F;
  Tensor out;
  relu.forward(in, out);
  Tensor go({1, 1, 1, 2});
  go.fill(1.0F);
  Tensor gi;
  relu.backward(in, go, gi);
  EXPECT_EQ(gi.at(0, 0, 0, 0), 0.0F);
  EXPECT_EQ(gi.at(0, 0, 0, 1), 1.0F);
}

TEST(Conv2d, RejectsZeroDimensions) {
  EXPECT_THROW(Conv2dLayer(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(Conv2dLayer(1, 0, 1), std::invalid_argument);
  EXPECT_THROW(Conv2dLayer(1, 1, 0), std::invalid_argument);
}

TEST(Conv2d, OutputShapeValidPadding) {
  Conv2dLayer conv(3, 8, 3);
  const Shape out = conv.output_shape({4, 3, 10, 12});
  EXPECT_EQ(out, (Shape{4, 8, 8, 10}));
}

TEST(Conv2d, ChannelMismatchThrows) {
  Conv2dLayer conv(3, 8, 3);
  EXPECT_THROW((void)conv.output_shape({1, 2, 10, 10}), std::invalid_argument);
}

TEST(Conv2d, InputSmallerThanKernelThrows) {
  Conv2dLayer conv(1, 1, 5);
  EXPECT_THROW((void)conv.output_shape({1, 1, 4, 4}), std::invalid_argument);
}

TEST(Conv2d, KnownConvolutionResult) {
  // 1x1 input channel, 2x2 kernel of ones, bias 0: output = window sums.
  Conv2dLayer conv(1, 1, 2);
  for (Parameter* p : conv.parameters()) p->value.fill(0.0F);
  conv.parameters()[0]->value.fill(1.0F);  // weights
  Tensor in({1, 1, 3, 3});
  float v = 1.0F;
  for (std::size_t h = 0; h < 3; ++h) {
    for (std::size_t w = 0; w < 3; ++w) in.at(0, 0, h, w) = v++;
  }
  Tensor out;
  conv.forward(in, out);
  // Windows: (1+2+4+5)=12, (2+3+5+6)=16, (4+5+7+8)=24, (5+6+8+9)=28.
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 12.0F);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), 16.0F);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 0), 24.0F);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 28.0F);
}

TEST(Conv2d, BiasAddsToAllOutputs) {
  Conv2dLayer conv(1, 2, 2);
  conv.parameters()[0]->value.fill(0.0F);
  conv.parameters()[1]->value.at(0, 1, 0, 0) = 3.0F;  // bias of filter 1
  Tensor in({1, 1, 2, 2});
  Tensor out;
  conv.forward(in, out);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 0.0F);
  EXPECT_FLOAT_EQ(out.at(0, 1, 0, 0), 3.0F);
}

TEST(Conv2d, ForwardMacsFormula) {
  Conv2dLayer conv(3, 8, 2);
  // out 4x(8)x(4)x(4), per output: 3*2*2 macs.
  EXPECT_EQ(conv.forward_macs({4, 3, 5, 5}), 4u * 8u * 4u * 4u * 3u * 2u * 2u);
}

TEST(Conv2d, ParameterCount) {
  Conv2dLayer conv(3, 8, 5);
  EXPECT_EQ(conv.parameter_count(), 8u * 3u * 5u * 5u + 8u);
}

TEST(MaxPool, OutputShapeFloors) {
  MaxPoolLayer pool(2);
  EXPECT_EQ(pool.output_shape({1, 3, 5, 7}), (Shape{1, 3, 2, 3}));
}

TEST(MaxPool, KernelOneIsIdentityShape) {
  MaxPoolLayer pool(1);
  EXPECT_EQ(pool.output_shape({1, 2, 4, 4}), (Shape{1, 2, 4, 4}));
}

TEST(MaxPool, SelectsWindowMaximum) {
  MaxPoolLayer pool(2);
  Tensor in({1, 1, 2, 4});
  in.at(0, 0, 0, 0) = 1.0F;
  in.at(0, 0, 0, 1) = 5.0F;
  in.at(0, 0, 1, 0) = 2.0F;
  in.at(0, 0, 1, 1) = 0.0F;
  in.at(0, 0, 0, 2) = -3.0F;
  in.at(0, 0, 0, 3) = -1.0F;
  in.at(0, 0, 1, 2) = -2.0F;
  in.at(0, 0, 1, 3) = -9.0F;
  Tensor out;
  pool.forward(in, out);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 5.0F);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), -1.0F);
}

TEST(MaxPool, BackwardRoutesGradientToArgmax) {
  MaxPoolLayer pool(2);
  Tensor in({1, 1, 2, 2});
  in.at(0, 0, 1, 0) = 9.0F;  // winner
  Tensor out;
  pool.forward(in, out);
  Tensor go({1, 1, 1, 1});
  go.fill(2.5F);
  Tensor gi;
  pool.backward(in, go, gi);
  EXPECT_FLOAT_EQ(gi.at(0, 0, 1, 0), 2.5F);
  EXPECT_FLOAT_EQ(gi.at(0, 0, 0, 0), 0.0F);
}

TEST(MaxPool, BackwardBeforeForwardThrows) {
  MaxPoolLayer pool(2);
  Tensor in({1, 1, 2, 2});
  Tensor go({1, 1, 1, 1});
  Tensor gi;
  EXPECT_THROW(pool.backward(in, go, gi), std::logic_error);
}

TEST(Dense, KnownAffineResult) {
  DenseLayer dense(2, 2);
  auto params = dense.parameters();
  // W = [[1, 2], [3, 4]], b = [0.5, -0.5].
  params[0]->value.flat()[0] = 1.0F;
  params[0]->value.flat()[1] = 2.0F;
  params[0]->value.flat()[2] = 3.0F;
  params[0]->value.flat()[3] = 4.0F;
  params[1]->value.flat()[0] = 0.5F;
  params[1]->value.flat()[1] = -0.5F;
  Tensor in({1, 2, 1, 1});
  in.flat()[0] = 1.0F;
  in.flat()[1] = 1.0F;
  Tensor out;
  dense.forward(in, out);
  EXPECT_FLOAT_EQ(out.flat()[0], 3.5F);
  EXPECT_FLOAT_EQ(out.flat()[1], 6.5F);
}

TEST(Dense, FlattensArbitraryInputShape) {
  DenseLayer dense(12, 3);
  EXPECT_EQ(dense.output_shape({2, 3, 2, 2}), (Shape{2, 3, 1, 1}));
  EXPECT_THROW((void)dense.output_shape({2, 3, 2, 3}), std::invalid_argument);
}

TEST(Dense, ForwardMacs) {
  DenseLayer dense(10, 4);
  EXPECT_EQ(dense.forward_macs({3, 10, 1, 1}), 3u * 4u * 10u);
}

TEST(Softmax, ProbabilitiesSumToOne) {
  SoftmaxCrossEntropy loss(4);
  Tensor logits({2, 4, 1, 1});
  logits.flat()[0] = 1.0F;
  logits.flat()[5] = 3.0F;
  std::vector<std::uint8_t> labels{0, 1};
  Tensor probs;
  (void)loss.forward(logits, labels, probs);
  for (std::size_t n = 0; n < 2; ++n) {
    float sum = 0.0F;
    for (std::size_t k = 0; k < 4; ++k) sum += probs.item(n)[k];
    EXPECT_NEAR(sum, 1.0F, 1e-5F);
  }
}

TEST(Softmax, UniformLogitsGiveLogKLoss) {
  SoftmaxCrossEntropy loss(10);
  Tensor logits({1, 10, 1, 1});
  std::vector<std::uint8_t> labels{3};
  Tensor probs;
  const double l = loss.forward(logits, labels, probs);
  EXPECT_NEAR(l, std::log(10.0), 1e-6);
}

TEST(Softmax, LabelOutOfRangeThrows) {
  SoftmaxCrossEntropy loss(3);
  Tensor logits({1, 3, 1, 1});
  std::vector<std::uint8_t> labels{3};
  Tensor probs;
  EXPECT_THROW((void)loss.forward(logits, labels, probs),
               std::invalid_argument);
}

TEST(Softmax, AccuracyCountsArgmaxMatches) {
  SoftmaxCrossEntropy loss(3);
  Tensor probs({2, 3, 1, 1});
  probs.item(0)[2] = 0.9F;  // predicts class 2
  probs.item(1)[0] = 0.8F;  // predicts class 0
  std::vector<std::uint8_t> labels{2, 1};
  EXPECT_DOUBLE_EQ(SoftmaxCrossEntropy::accuracy(probs, labels), 0.5);
}

TEST(Softmax, NumericallyStableWithLargeLogits) {
  SoftmaxCrossEntropy loss(2);
  Tensor logits({1, 2, 1, 1});
  logits.flat()[0] = 10000.0F;
  logits.flat()[1] = -10000.0F;
  std::vector<std::uint8_t> labels{0};
  Tensor probs;
  const double l = loss.forward(logits, labels, probs);
  EXPECT_TRUE(std::isfinite(l));
  EXPECT_NEAR(l, 0.0, 1e-6);
}

TEST(Softmax, GradientIsProbMinusOneHotOverBatch) {
  SoftmaxCrossEntropy loss(2);
  Tensor logits({2, 2, 1, 1});
  std::vector<std::uint8_t> labels{0, 1};
  Tensor probs;
  (void)loss.forward(logits, labels, probs);
  Tensor grad;
  loss.backward(probs, labels, grad);
  EXPECT_NEAR(grad.item(0)[0], (0.5F - 1.0F) / 2.0F, 1e-6F);
  EXPECT_NEAR(grad.item(0)[1], 0.5F / 2.0F, 1e-6F);
  EXPECT_NEAR(grad.item(1)[1], (0.5F - 1.0F) / 2.0F, 1e-6F);
}

}  // namespace
}  // namespace hp::nn
