#include "nn/sgd_trainer.hpp"

#include <gtest/gtest.h>

#include "nn/network.hpp"

namespace hp::nn {
namespace {

DataSplit tiny_data(std::uint64_t seed = 42) {
  SyntheticDataOptions opt;
  opt.train_size = 120;
  opt.test_size = 60;
  opt.image_size = 12;
  opt.seed = seed;
  return make_synthetic_mnist(opt);
}

CnnSpec tiny_spec() {
  CnnSpec spec;
  spec.input = {1, 1, 12, 12};
  spec.conv_stages = {{6, 3, 2}};
  spec.dense_stages = {{24}};
  spec.num_classes = 10;
  return spec;
}

TEST(SgdTrainer, ValidatesConfig) {
  TrainingConfig c;
  c.learning_rate = 0.0;
  EXPECT_THROW(SgdTrainer{c}, std::invalid_argument);
  c = {};
  c.momentum = 1.0;
  EXPECT_THROW(SgdTrainer{c}, std::invalid_argument);
  c = {};
  c.weight_decay = -1.0;
  EXPECT_THROW(SgdTrainer{c}, std::invalid_argument);
  c = {};
  c.batch_size = 0;
  EXPECT_THROW(SgdTrainer{c}, std::invalid_argument);
  c = {};
  c.epochs = 0;
  EXPECT_THROW(SgdTrainer{c}, std::invalid_argument);
}

TEST(SgdTrainer, EmptyDatasetThrows) {
  Network net = build_network(tiny_spec());
  TrainingConfig c;
  SgdTrainer trainer(c);
  Dataset empty;
  const DataSplit data = tiny_data();
  EXPECT_THROW((void)trainer.train(net, empty, data.test),
               std::invalid_argument);
}

TEST(SgdTrainer, LearnsSyntheticMnist) {
  const DataSplit data = tiny_data();
  Network net = build_network(tiny_spec());
  stats::Rng rng(1);
  net.initialize(rng);
  TrainingConfig c;
  c.learning_rate = 0.05;
  c.momentum = 0.9;
  c.weight_decay = 1e-4;
  c.epochs = 8;
  c.batch_size = 20;
  c.seed = 2;
  SgdTrainer trainer(c);
  const TrainingResult result = trainer.train(net, data.train, data.test);
  ASSERT_EQ(result.epochs.size(), 8u);
  EXPECT_FALSE(result.diverged);
  // Starts near chance (0.9), must improve clearly.
  EXPECT_LT(result.final_test_error, 0.5);
  // Loss should drop from first to last epoch.
  EXPECT_LT(result.epochs.back().train_loss, result.epochs.front().train_loss);
}

TEST(SgdTrainer, HugeLearningRateDiverges) {
  const DataSplit data = tiny_data();
  Network net = build_network(tiny_spec());
  stats::Rng rng(1);
  net.initialize(rng);
  TrainingConfig c;
  c.learning_rate = 500.0;
  c.epochs = 6;
  SgdTrainer trainer(c);
  const TrainingResult result = trainer.train(net, data.train, data.test);
  EXPECT_TRUE(result.diverged);
  EXPECT_GE(result.final_test_error, 0.8);
  // Divergence stops training early.
  EXPECT_LT(result.epochs.size(), 6u + 1u);
}

TEST(SgdTrainer, CallbackCanStopTraining) {
  const DataSplit data = tiny_data();
  Network net = build_network(tiny_spec());
  stats::Rng rng(1);
  net.initialize(rng);
  TrainingConfig c;
  c.epochs = 10;
  SgdTrainer trainer(c);
  int calls = 0;
  const TrainingResult result =
      trainer.train(net, data.train, data.test, [&](const EpochReport& r) {
        ++calls;
        return r.epoch < 2;  // stop after the third epoch
      });
  EXPECT_TRUE(result.early_stopped);
  EXPECT_EQ(result.epochs.size(), 3u);
  EXPECT_EQ(calls, 3);
}

TEST(SgdTrainer, DeterministicForSeeds) {
  const DataSplit data = tiny_data();
  TrainingConfig c;
  c.epochs = 2;
  c.seed = 11;
  Network a = build_network(tiny_spec());
  Network b = build_network(tiny_spec());
  stats::Rng ra(3), rb(3);
  a.initialize(ra);
  b.initialize(rb);
  SgdTrainer ta(c), tb(c);
  const auto res_a = ta.train(a, data.train, data.test);
  const auto res_b = tb.train(b, data.train, data.test);
  EXPECT_DOUBLE_EQ(res_a.final_test_error, res_b.final_test_error);
  EXPECT_DOUBLE_EQ(res_a.epochs[0].train_loss, res_b.epochs[0].train_loss);
}

TEST(SgdTrainer, EpochReportsAreSequential) {
  const DataSplit data = tiny_data();
  Network net = build_network(tiny_spec());
  stats::Rng rng(5);
  net.initialize(rng);
  TrainingConfig c;
  c.epochs = 4;
  SgdTrainer trainer(c);
  const auto result = trainer.train(net, data.train, data.test);
  for (std::size_t e = 0; e < result.epochs.size(); ++e) {
    EXPECT_EQ(result.epochs[e].epoch, e);
    EXPECT_GE(result.epochs[e].test_error, 0.0);
    EXPECT_LE(result.epochs[e].test_error, 1.0);
  }
}

TEST(SgdTrainer, WeightDecayShrinksWeightNorm) {
  const DataSplit data = tiny_data();
  TrainingConfig c;
  c.learning_rate = 0.01;
  c.epochs = 3;
  c.weight_decay = 0.0;
  Network a = build_network(tiny_spec());
  Network b = build_network(tiny_spec());
  stats::Rng ra(9), rb(9);
  a.initialize(ra);
  b.initialize(rb);
  SgdTrainer ta(c);
  c.weight_decay = 0.1;  // strong decay
  SgdTrainer tb(c);
  (void)ta.train(a, data.train, data.test);
  (void)tb.train(b, data.train, data.test);
  double norm_a = 0.0, norm_b = 0.0;
  for (Parameter* p : a.parameters()) {
    if (p->decay) norm_a += p->value.squared_norm();
  }
  for (Parameter* p : b.parameters()) {
    if (p->decay) norm_b += p->value.squared_norm();
  }
  EXPECT_LT(norm_b, norm_a);
}

}  // namespace
}  // namespace hp::nn
