#include "nn/network.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace hp::nn {
namespace {

CnnSpec small_spec() {
  CnnSpec spec;
  spec.input = {1, 1, 12, 12};
  spec.conv_stages = {{6, 3, 2}};
  spec.dense_stages = {{16}};
  spec.num_classes = 10;
  return spec;
}

TEST(CnnSpec, StructuralVectorLayout) {
  CnnSpec spec;
  spec.conv_stages = {{20, 3, 2}, {40, 5, 1}};
  spec.dense_stages = {{300}};
  const auto z = spec.structural_vector();
  ASSERT_EQ(z.size(), 7u);
  EXPECT_EQ(z[0], 20.0);
  EXPECT_EQ(z[1], 3.0);
  EXPECT_EQ(z[2], 2.0);
  EXPECT_EQ(z[3], 40.0);
  EXPECT_EQ(z[4], 5.0);
  EXPECT_EQ(z[5], 1.0);
  EXPECT_EQ(z[6], 300.0);
}

TEST(CnnSpec, ToStringMentionsStages) {
  const std::string s = small_spec().to_string();
  EXPECT_NE(s.find("conv3x3x6"), std::string::npos);
  EXPECT_NE(s.find("fc16"), std::string::npos);
  EXPECT_NE(s.find("softmax10"), std::string::npos);
}

TEST(BuildNetwork, ProducesTrainableNetwork) {
  Network net = build_network(small_spec());
  EXPECT_GT(net.num_layers(), 3u);
  EXPECT_GT(net.parameter_count(), 0u);
}

TEST(BuildNetwork, RejectsCollapsedSpatialDims) {
  CnnSpec spec;
  spec.input = {1, 1, 6, 6};
  spec.conv_stages = {{4, 5, 3}, {4, 5, 1}};  // 6->2->0 collapses
  spec.num_classes = 10;
  EXPECT_THROW((void)build_network(spec), std::invalid_argument);
  EXPECT_FALSE(is_feasible(spec));
}

TEST(BuildNetwork, RejectsTooFewClasses) {
  CnnSpec spec = small_spec();
  spec.num_classes = 1;
  EXPECT_THROW((void)build_network(spec), std::invalid_argument);
}

TEST(ComputeWorkload, MatchesBuiltNetworkParameterCount) {
  for (const CnnSpec& spec :
       {small_spec(),
        CnnSpec{{1, 3, 16, 16}, {{8, 3, 2}, {12, 2, 2}}, {{32}}, 10},
        CnnSpec{{1, 1, 28, 28}, {{20, 5, 2}}, {{200}}, 10}}) {
    Network net = build_network(spec);
    const WorkloadSummary w = compute_workload(spec);
    EXPECT_EQ(w.total_weights, net.parameter_count()) << spec.to_string();
  }
}

TEST(ComputeWorkload, LayersAndTotalsConsistent) {
  const WorkloadSummary w = compute_workload(small_spec());
  std::size_t macs = 0, weights = 0, acts = 0, peak = 0;
  for (const LayerWorkload& l : w.layers) {
    macs += l.macs;
    weights += l.weight_count;
    acts += l.activation_count;
    peak = std::max(peak, l.activation_count);
  }
  EXPECT_EQ(w.total_macs, macs);
  EXPECT_EQ(w.total_weights, weights);
  EXPECT_EQ(w.total_activations, acts);
  EXPECT_EQ(w.peak_activations, peak);
}

TEST(ComputeWorkload, ConvMacsHandComputed) {
  CnnSpec spec;
  spec.input = {1, 1, 5, 5};
  spec.conv_stages = {{2, 2, 1}};  // out 4x4, patch 1*2*2
  spec.dense_stages = {};
  spec.num_classes = 2;
  const WorkloadSummary w = compute_workload(spec);
  // conv macs = 2 features * 16 pixels * 4 patch = 128.
  EXPECT_EQ(w.layers[0].macs, 128u);
  // classifier: 2 classes x (2*4*4 = 32 inputs).
  EXPECT_EQ(w.layers.back().macs, 64u);
}

TEST(ComputeWorkload, MoreFeaturesMoreWork) {
  CnnSpec a = small_spec();
  CnnSpec b = small_spec();
  b.conv_stages[0].features = 12;
  EXPECT_GT(compute_workload(b).total_macs, compute_workload(a).total_macs);
  EXPECT_GT(compute_workload(b).total_weights,
            compute_workload(a).total_weights);
}

TEST(Network, ForwardProducesFiniteLoss) {
  Network net = build_network(small_spec());
  stats::Rng rng(3);
  net.initialize(rng);
  Tensor input({4, 1, 12, 12});
  for (float& x : input.flat()) x = static_cast<float>(rng.uniform());
  std::vector<std::uint8_t> labels{0, 1, 2, 3};
  const double loss = net.forward(input, labels);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0);
}

TEST(Network, BackwardBeforeForwardThrows) {
  Network net = build_network(small_spec());
  Tensor input({1, 1, 12, 12});
  std::vector<std::uint8_t> labels{0};
  EXPECT_THROW(net.backward(input, labels), std::logic_error);
}

TEST(Network, ZeroGradientsClearsAll) {
  Network net = build_network(small_spec());
  stats::Rng rng(4);
  net.initialize(rng);
  Tensor input({2, 1, 12, 12});
  for (float& x : input.flat()) x = static_cast<float>(rng.uniform());
  std::vector<std::uint8_t> labels{0, 1};
  (void)net.forward(input, labels);
  net.backward(input, labels);
  double norm = 0.0;
  for (Parameter* p : net.parameters()) norm += p->gradient.squared_norm();
  EXPECT_GT(norm, 0.0);
  net.zero_gradients();
  norm = 0.0;
  for (Parameter* p : net.parameters()) norm += p->gradient.squared_norm();
  EXPECT_EQ(norm, 0.0);
}

TEST(Network, EvaluateErrorInUnitRange) {
  Network net = build_network(small_spec());
  stats::Rng rng(5);
  net.initialize(rng);
  Tensor input({8, 1, 12, 12});
  for (float& x : input.flat()) x = static_cast<float>(rng.uniform());
  std::vector<std::uint8_t> labels(8, 0);
  const double err = net.evaluate_error(input, labels);
  EXPECT_GE(err, 0.0);
  EXPECT_LE(err, 1.0);
}

TEST(Network, InitializeIsDeterministicPerSeed) {
  Network a = build_network(small_spec());
  Network b = build_network(small_spec());
  stats::Rng ra(7), rb(7);
  a.initialize(ra);
  b.initialize(rb);
  Tensor input({2, 1, 12, 12});
  stats::Rng rin(8);
  for (float& x : input.flat()) x = static_cast<float>(rin.uniform());
  std::vector<std::uint8_t> labels{1, 2};
  EXPECT_DOUBLE_EQ(a.forward(input, labels), b.forward(input, labels));
}

TEST(Network, PoolSizeOneSkipsPooling) {
  CnnSpec with_pool = small_spec();
  CnnSpec no_pool = small_spec();
  no_pool.conv_stages[0].pool_size = 1;
  const auto wp = compute_workload(with_pool);
  const auto np = compute_workload(no_pool);
  // Without pooling the dense layer sees a larger input -> more weights.
  EXPECT_GT(np.total_weights, wp.total_weights);
}

}  // namespace
}  // namespace hp::nn
