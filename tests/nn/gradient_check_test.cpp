// Finite-difference gradient checks for every layer with parameters, plus
// input-gradient checks through the full loss. These are the strongest
// correctness guarantees the NN substrate has.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/layers.hpp"
#include "nn/pooling.hpp"
#include "nn/softmax.hpp"
#include "stats/rng.hpp"

namespace hp::nn {
namespace {

/// Scalar loss used to probe layer gradients: L = sum(out * coeff) with
/// fixed pseudo-random coefficients (so dL/dout = coeff).
struct ProbeLoss {
  std::vector<float> coeff;

  void resize(std::size_t n, stats::Rng& rng) {
    coeff.resize(n);
    for (float& c : coeff) c = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  [[nodiscard]] double value(const Tensor& out) const {
    double acc = 0.0;
    const auto f = out.flat();
    for (std::size_t i = 0; i < f.size(); ++i) {
      acc += static_cast<double>(f[i]) * static_cast<double>(coeff[i]);
    }
    return acc;
  }
  [[nodiscard]] Tensor gradient(const Shape& shape) const {
    Tensor g(shape);
    auto f = g.flat();
    for (std::size_t i = 0; i < f.size(); ++i) f[i] = coeff[i];
    return g;
  }
};

void fill_random(Tensor& t, stats::Rng& rng, double scale = 1.0) {
  for (float& x : t.flat()) {
    x = static_cast<float>(rng.uniform(-scale, scale));
  }
}

/// Checks every parameter gradient and the input gradient of @p layer at a
/// random input of @p in_shape by central finite differences.
void check_layer_gradients(Layer& layer, const Shape& in_shape,
                           std::uint64_t seed, double tol = 2e-2) {
  stats::Rng rng(seed);
  Tensor input(in_shape);
  fill_random(input, rng);
  layer.initialize(rng);

  Tensor output;
  layer.forward(input, output);
  ProbeLoss probe;
  probe.resize(output.size(), rng);

  // Analytic gradients.
  for (Parameter* p : layer.parameters()) p->gradient.fill(0.0F);
  Tensor grad_out = probe.gradient(output.shape());
  Tensor grad_in;
  layer.backward(input, grad_out, grad_in);

  const double eps = 1e-2;  // float32: balance truncation vs roundoff
  const auto numeric_grad = [&](float* slot) {
    const float saved = *slot;
    *slot = saved + static_cast<float>(eps);
    Tensor out_p;
    layer.forward(input, out_p);
    const double lp = probe.value(out_p);
    *slot = saved - static_cast<float>(eps);
    Tensor out_m;
    layer.forward(input, out_m);
    const double lm = probe.value(out_m);
    *slot = saved;
    return (lp - lm) / (2.0 * eps);
  };

  // Parameter gradients (probe a subset for large blobs).
  for (Parameter* p : layer.parameters()) {
    const std::size_t n = p->value.size();
    const std::size_t stride = std::max<std::size_t>(1, n / 25);
    for (std::size_t i = 0; i < n; i += stride) {
      const double num = numeric_grad(p->value.data() + i);
      const double ana = static_cast<double>(p->gradient.flat()[i]);
      EXPECT_NEAR(ana, num, tol * std::max(1.0, std::abs(num)))
          << "param grad index " << i;
    }
  }

  // Input gradients.
  const std::size_t n = input.size();
  const std::size_t stride = std::max<std::size_t>(1, n / 25);
  for (std::size_t i = 0; i < n; i += stride) {
    const double num = numeric_grad(input.data() + i);
    const double ana = static_cast<double>(grad_in.flat()[i]);
    EXPECT_NEAR(ana, num, tol * std::max(1.0, std::abs(num)))
        << "input grad index " << i;
  }
}

TEST(GradientCheck, Dense) {
  DenseLayer dense(6, 4);
  check_layer_gradients(dense, {2, 6, 1, 1}, 1);
}

TEST(GradientCheck, DenseFromSpatialInput) {
  DenseLayer dense(12, 3);
  check_layer_gradients(dense, {2, 3, 2, 2}, 2);
}

TEST(GradientCheck, Conv2dSingleChannel) {
  Conv2dLayer conv(1, 3, 2);
  check_layer_gradients(conv, {2, 1, 5, 5}, 3);
}

TEST(GradientCheck, Conv2dMultiChannel) {
  Conv2dLayer conv(3, 4, 3);
  check_layer_gradients(conv, {2, 3, 6, 6}, 4);
}

TEST(GradientCheck, Conv2dLargeKernel) {
  Conv2dLayer conv(2, 2, 5);
  check_layer_gradients(conv, {1, 2, 7, 7}, 5);
}

TEST(GradientCheck, Relu) {
  ReluLayer relu;
  check_layer_gradients(relu, {2, 3, 4, 4}, 6);
}

TEST(GradientCheck, MaxPool) {
  MaxPoolLayer pool(2);
  check_layer_gradients(pool, {2, 2, 6, 6}, 7);
}

TEST(GradientCheck, SoftmaxCrossEntropyLogitGradient) {
  // Check d(loss)/d(logits) of the fused head by finite differences.
  SoftmaxCrossEntropy loss(5);
  stats::Rng rng(8);
  Tensor logits({3, 5, 1, 1});
  fill_random(logits, rng, 2.0);
  std::vector<std::uint8_t> labels{0, 3, 4};

  Tensor probs;
  (void)loss.forward(logits, labels, probs);
  Tensor grad;
  loss.backward(probs, labels, grad);

  const double eps = 1e-2;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    float* slot = logits.data() + i;
    const float saved = *slot;
    Tensor p2;
    *slot = saved + static_cast<float>(eps);
    const double lp = loss.forward(logits, labels, p2);
    *slot = saved - static_cast<float>(eps);
    const double lm = loss.forward(logits, labels, p2);
    *slot = saved;
    const double num = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(static_cast<double>(grad.flat()[i]), num, 2e-3)
        << "logit " << i;
  }
}

}  // namespace
}  // namespace hp::nn
