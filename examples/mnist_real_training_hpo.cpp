// Real-training HPO: the full HyperPower loop with genuine CNN training —
// no analytic shortcuts. Uses the tiny MNIST-like problem (12x12 synthetic
// glyphs) so each candidate trains in well under a second, and compares
// constraint-aware random search against HW-IECI Bayesian optimization
// under a power budget on the simulated GTX 1070.

#include <cstdio>

#include "core/framework.hpp"
#include "hw/profiler.hpp"
#include "testbed/nn_objective.hpp"

int main() {
  using namespace hp;

  const core::BenchmarkProblem problem = core::tiny_mnist_problem();

  testbed::NnObjectiveOptions options;
  options.data.train_size = 300;
  options.data.test_size = 150;
  options.data.image_size = 12;
  options.data.seed = 11;
  options.epochs = 5;
  options.batch_size = 30;
  options.seed = 3;
  testbed::NnTrainingObjective objective(problem, testbed::SyntheticDataset::Mnist,
                                         hw::gtx1070(), options);

  core::ConstraintBudgets budgets;
  budgets.power_w = 55.0;  // tight for the tiny space

  core::HyperPowerFramework framework(problem, objective, budgets);
  hw::GpuSimulator profiling_gpu(hw::gtx1070(), 5);
  hw::InferenceProfiler profiler(profiling_gpu);
  (void)framework.train_hardware_models(profiler, 60, 2018);
  std::printf("power model RMSPE: %.2f%% over %zu profiled configs\n\n",
              framework.power_model()->cv.rmspe,
              framework.power_model()->sample_count);

  for (const core::Method method : {core::Method::Rand, core::Method::HwIeci}) {
    objective.clock().advance(0.0);  // (clock is per-objective; runs share it)
    core::FrameworkOptions fo;
    fo.method = method;
    fo.hyperpower_mode = true;
    fo.optimizer.max_function_evaluations = 12;  // 12 real trainings
    fo.optimizer.max_samples = 600;
    fo.optimizer.seed = 17;
    const auto result = framework.optimize(fo);

    const auto& trace = result.run.trace;
    std::printf("%s: %zu trainings, %zu candidates filtered a priori, "
                "%zu early-terminated\n",
                result.method_name.c_str(), trace.completed_count(),
                trace.model_filtered_count(), trace.early_terminated_count());
    if (result.run.best) {
      const auto& best = *result.run.best;
      std::printf("  best: %.1f%% test error at %.1f W  --  %s\n",
                  best.test_error * 100.0, *best.measured_power_w,
                  problem.to_cnn_spec(best.config).to_string().c_str());
      const auto settings = problem.training_settings(best.config);
      std::printf("  trained with lr %.4f, momentum %.3f\n\n",
                  settings.learning_rate, settings.momentum);
    } else {
      std::printf("  no feasible configuration found\n\n");
    }
  }
  std::printf("(every test error above comes from actually training a CNN "
              "with the built-in\n nn substrate: im2col convolutions, "
              "max-pooling, SGD with momentum)\n");
  return 0;
}
