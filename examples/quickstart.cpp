// Quickstart: power-constrained hyper-parameter optimization in ~60 lines.
//
// The flow mirrors Figure 2 of the paper: define the NN design space and
// target platform, train the power/memory predictors from an offline
// profiling pass, then run HW-IECI Bayesian optimization under the budgets.

#include <cstdio>

#include "core/framework.hpp"
#include "hw/profiler.hpp"
#include "testbed/testbed_objective.hpp"

int main() {
  using namespace hp;

  // 1. The design space: AlexNet-style MNIST variants (6 hyper-parameters)
  //    and the target platform (simulated GTX 1070).
  const core::BenchmarkProblem problem = core::mnist_problem();
  const hw::DeviceSpec device = hw::gtx1070();

  // 2. The expensive objective: train a candidate, report its test error,
  //    then measure inference power/memory. Here the calibrated testbed
  //    stands in for Caffe + real hardware (see DESIGN.md); swap in
  //    testbed::NnTrainingObjective to train real (tiny) CNNs instead.
  testbed::TestbedObjective objective(
      problem, testbed::mnist_landscape(), device,
      testbed::calibrated_options(problem.name(), device));

  // 3. The practitioner's budgets: 85 W, 680 MB.
  core::ConstraintBudgets budgets;
  budgets.power_w = 85.0;
  budgets.memory_mb = 680.0;

  // 4. Offline phase: profile 80 random architectures through the NVML
  //    path and fit the linear power/memory models by 10-fold CV.
  core::HyperPowerFramework framework(problem, objective, budgets);
  hw::GpuSimulator profiling_gpu(device, /*seed=*/7);
  hw::InferenceProfiler profiler(profiling_gpu);
  const std::size_t profiled =
      framework.train_hardware_models(profiler, 80, /*seed=*/2018);
  std::printf("profiled %zu configurations; power model RMSPE %.2f%%, "
              "memory model RMSPE %.2f%%\n",
              profiled, framework.power_model()->cv.rmspe,
              framework.memory_model()->cv.rmspe);

  // 5. Online phase: HW-IECI Bayesian optimization for 2 (virtual) hours.
  core::FrameworkOptions options;
  options.method = core::Method::HwIeci;
  options.hyperpower_mode = true;
  options.optimizer.max_runtime_s = 2 * 3600.0;
  options.optimizer.seed = 1;
  const core::FrameworkResult result = framework.optimize(options);

  // 6. The best power/memory-feasible network found.
  const auto& trace = result.run.trace;
  std::printf("queried %zu samples (%zu trained, %zu filtered a priori, "
              "%zu early-terminated)\n",
              trace.size(), trace.completed_count(),
              trace.model_filtered_count(), trace.early_terminated_count());
  if (result.run.best) {
    const auto& best = *result.run.best;
    std::printf("best feasible error: %.2f%% at %.1f W / %.0f MB\n",
                best.test_error * 100.0, *best.measured_power_w,
                best.measured_memory_mb.value_or(0.0));
    std::printf("architecture: %s\n",
                problem.to_cnn_spec(best.config).to_string().c_str());
  } else {
    std::printf("no feasible configuration found\n");
  }
  return 0;
}
