// Deep dive into the paper's hardware models (Section 3.3): profile random
// architectures through the NVML facade on several GPUs, fit the linear
// predictors by 10-fold cross validation, inspect the learned per-parameter
// weights, and use the models the way the acquisition function does —
// predicting feasibility of unseen candidates in microseconds.

#include <cstdio>

#include "core/hw_models.hpp"
#include "core/spaces.hpp"
#include "hw/profiler.hpp"

int main() {
  using namespace hp;
  std::printf("=== Power/memory model study ===\n\n");

  const core::BenchmarkProblem problem = core::mnist_problem();

  for (const hw::DeviceSpec& device :
       {hw::gtx1070(), hw::gtx1080ti(), hw::tegra_tx1(), hw::jetson_nano()}) {
    std::printf("---- %s ----\n", device.name.c_str());
    hw::GpuSimulator simulator(device, 13);
    hw::InferenceProfiler profiler(simulator);

    // Offline random sampling of the structural design space.
    stats::Rng rng(2018);
    std::vector<nn::CnnSpec> specs;
    while (specs.size() < 100) {
      const auto config = problem.space().sample(rng);
      const auto spec = problem.to_cnn_spec(config);
      if (nn::is_feasible(spec)) specs.push_back(spec);
    }
    const auto samples = profiler.profile_all(specs);
    std::printf("profiled %zu configs; power %.1f-%.1f W\n", samples.size(),
                [&] {
                  double lo = 1e18;
                  for (const auto& s : samples) lo = std::min(lo, s.power_w);
                  return lo;
                }(),
                [&] {
                  double hi = 0.0;
                  for (const auto& s : samples) hi = std::max(hi, s.power_w);
                  return hi;
                }());

    const auto power = core::train_power_model(samples);
    std::printf("power model: RMSPE %.2f%% (folds:", power.cv.rmspe);
    for (double f : power.cv.fold_rmspe) std::printf(" %.1f", f);
    std::printf(")\n");
    // The learned weights w_j of P(z) = sum_j w_j z_j (+ bias): one per
    // structural hyper-parameter, in space order.
    std::printf("  learned weights: ");
    std::size_t j = 0;
    for (const auto& p : problem.space().parameters()) {
      if (!p.structural) continue;
      std::printf("%s=%.3f  ", p.name.c_str(), power.model.weights()[j++]);
    }
    std::printf("bias=%.1f\n", power.model.intercept());

    if (const auto memory = core::train_memory_model(samples)) {
      std::printf("memory model: RMSPE %.2f%%\n", memory->cv.rmspe);
    } else {
      std::printf("memory model: platform exposes no memory counter "
                  "(paper footnote 1)\n");
    }

    // Use the model as the acquisition function does: instant feasibility
    // screening of an unseen candidate.
    const core::Configuration candidate{64, 5, 1, 600, 0.01, 0.9};
    const auto z = problem.space().structural_vector(candidate);
    const double predicted = power.model.predict(z);
    const auto measured = profiler.profile(problem.to_cnn_spec(candidate));
    std::printf("unseen candidate: predicted %.1f W, measured %.1f W "
                "(error %.1f%%)\n\n",
                predicted, measured.power_w,
                100.0 * std::abs(predicted - measured.power_w) /
                    measured.power_w);
  }
  return 0;
}
