// Power- and memory-constrained CIFAR-10 architecture search on two
// platforms: the full four-method comparison (Rand, Rand-Walk, HW-CWEI,
// HW-IECI) under a one-hour virtual budget, on the server GPU and on the
// embedded board — the paper's core use case end to end.

#include <cstdio>
#include <vector>

#include "core/framework.hpp"
#include "hw/profiler.hpp"
#include "testbed/testbed_objective.hpp"

namespace {

void run_on_device(const hp::hw::DeviceSpec& device, double power_budget_w,
                   std::optional<double> memory_budget_mb) {
  using namespace hp;
  const core::BenchmarkProblem problem = core::cifar10_problem();
  std::printf("==== CIFAR-10 on %s (budget %.0f W%s) ====\n", device.name.c_str(),
              power_budget_w, memory_budget_mb ? ", +memory" : "");

  core::ConstraintBudgets budgets;
  budgets.power_w = power_budget_w;
  budgets.memory_mb = memory_budget_mb;

  testbed::TestbedObjective objective(
      problem, testbed::cifar10_landscape(), device,
      testbed::calibrated_options(problem.name(), device));
  core::HyperPowerFramework framework(problem, objective, budgets);

  hw::GpuSimulator profiling_gpu(device, 21);
  hw::InferenceProfiler profiler(profiling_gpu);
  (void)framework.train_hardware_models(profiler, 100, 2018);
  std::printf("power model RMSPE %.2f%%", framework.power_model()->cv.rmspe);
  if (framework.memory_model()) {
    std::printf(", memory model RMSPE %.2f%%",
                framework.memory_model()->cv.rmspe);
  } else {
    std::printf(" (no memory counter on this platform)");
  }
  std::printf("\n\n");

  for (const core::Method method :
       {core::Method::Rand, core::Method::RandWalk, core::Method::HwCwei,
        core::Method::HwIeci}) {
    objective.virtual_clock().reset();
    core::FrameworkOptions fo;
    fo.method = method;
    fo.hyperpower_mode = true;
    fo.optimizer.max_runtime_s = 3600.0;  // one virtual hour
    fo.optimizer.seed = 4;
    const auto result = framework.optimize(fo);
    const auto& trace = result.run.trace;
    std::printf("%-9s  samples %5zu  trained %3zu  filtered %5zu  ",
                result.method_name.c_str(), trace.size(),
                trace.completed_count(), trace.model_filtered_count());
    if (result.run.best) {
      std::printf("best %.2f%% @ %.1f W\n",
                  result.run.best->test_error * 100.0,
                  *result.run.best->measured_power_w);
    } else {
      std::printf("no feasible design found\n");
    }
  }

  // Show the winner's architecture in detail (from a fresh HW-IECI run).
  objective.virtual_clock().reset();
  core::FrameworkOptions fo;
  fo.method = core::Method::HwIeci;
  fo.optimizer.max_runtime_s = 3600.0;
  fo.optimizer.seed = 4;
  const auto result = framework.optimize(fo);
  if (result.run.best) {
    const nn::CnnSpec spec = problem.to_cnn_spec(result.run.best->config);
    const nn::WorkloadSummary workload = nn::compute_workload(spec);
    std::printf("\nHW-IECI winner: %s\n", spec.to_string().c_str());
    std::printf("  %.2fM weights, %.1fM MACs per inference\n\n",
                workload.total_weights / 1e6, workload.total_macs / 1e6);
  }
}

}  // namespace

int main() {
  std::printf("=== Power-constrained CIFAR-10 architecture search ===\n\n");
  run_on_device(hp::hw::gtx1070(), 90.0, 720.0);
  run_on_device(hp::hw::tegra_tx1(), 12.0, std::nullopt);
  return 0;
}
