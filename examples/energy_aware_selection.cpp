// Energy-aware model selection: combines the paper's power model (Eq. 1)
// with the NeuralPower-style layer-wise runtime model (extension, paper
// ref [10]) into an energy predictor, then ranks candidate architectures
// by predicted energy-per-batch — the metric that matters for
// battery-powered deployment — without training or even running any of
// them.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/layerwise_models.hpp"
#include "core/spaces.hpp"
#include "hw/profiler.hpp"

int main() {
  using namespace hp;
  std::printf("=== Energy-aware architecture selection on Tegra TX1 ===\n\n");

  const core::BenchmarkProblem problem = core::cifar10_problem();
  const hw::DeviceSpec device = hw::tegra_tx1();

  // Offline: profile random architectures WITH per-layer timings.
  hw::GpuSimulator simulator(device, 11);
  hw::ProfilerOptions profiler_options;
  profiler_options.collect_layer_timings = true;
  hw::InferenceProfiler profiler(simulator, profiler_options);
  stats::Rng rng(2018);
  std::vector<nn::CnnSpec> specs;
  while (specs.size() < 80) {
    const auto config = problem.space().sample(rng);
    const auto spec = problem.to_cnn_spec(config);
    if (nn::is_feasible(spec)) specs.push_back(spec);
  }
  const auto samples = profiler.profile_all(specs);

  // Fit the two models and compose the energy predictor.
  auto [latency_model, latency_report] =
      core::LayerwiseLatencyModel::train(samples);
  const auto power = core::train_power_model(samples);
  const core::EnergyPredictor energy(power.model, latency_model);
  std::printf("power model RMSPE %.2f%%, network latency RMSPE %.2f%%\n\n",
              power.cv.rmspe, latency_report.total_latency_rmspe);

  // Online: rank fresh candidates by predicted energy, then check the
  // top/bottom picks against the simulated ground truth.
  struct Candidate {
    core::Configuration config;
    double predicted_mj;
  };
  std::vector<Candidate> candidates;
  while (candidates.size() < 40) {
    const auto config = problem.space().sample(rng);
    const auto spec = problem.to_cnn_spec(config);
    if (!nn::is_feasible(spec)) continue;
    candidates.push_back({config, 1e3 * energy.predict_energy_j(spec)});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.predicted_mj < b.predicted_mj;
            });

  std::printf("%-10s %-12s %-12s  architecture\n", "rank", "pred [mJ]",
              "actual [mJ]");
  const auto show = [&](std::size_t rank) {
    const Candidate& c = candidates[rank];
    const auto spec = problem.to_cnn_spec(c.config);
    const auto measured = profiler.profile(spec);
    std::printf("%-10zu %-12.1f %-12.1f  %s\n", rank + 1, c.predicted_mj,
                1e3 * measured.energy_j(), spec.to_string().c_str());
  };
  show(0);
  show(1);
  show(candidates.size() / 2);
  show(candidates.size() - 2);
  show(candidates.size() - 1);

  const double span =
      candidates.back().predicted_mj / candidates.front().predicted_mj;
  std::printf("\n=> a %.1fx energy spread across the design space, ranked "
              "without training a single\n   network — the same a-priori "
              "insight the paper exploits for power, extended to energy.\n",
              span);
  return 0;
}
